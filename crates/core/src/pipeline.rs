//! The cycle-level out-of-order pipeline.
//!
//! Replays a [`Trace`] through the Table 2 machine: a line-buffer fetch
//! front-end with TAGE/BTB/RAS/IBTC prediction, 8-wide rename with
//! DSR / 9-bit idiom elimination / MVP-TVP-GVP / SpSR, dispatch into
//! ROB + unified IQ + split LSQ, 15-wide issue across the Table 2
//! functional-unit pools, in-place value-prediction validation at
//! execute (with full pipeline flush *including the predicted µop* for
//! MVP/TVP, §3.4), store-set-gated load speculation, and 8-wide commit
//! that trains every predictor in retirement order.
//!
//! Being trace-driven, branch mispredictions stall fetch at the branch
//! until it resolves (wrong-path µops are not simulated — see
//! DESIGN.md §2), while value mispredictions and memory-ordering
//! violations squash correct-path µops that are then re-fetched by
//! rolling the trace cursor back.

use std::collections::VecDeque;

use tvp_chaos::{
    ChaosEngine, CommitOracle, DeadlockDiagnostic, Divergence, FaultKind, MshrInfo, RobHeadInfo,
    Sabotage, Watchdog,
};
use tvp_isa::op::{BranchKind, ExecClass, Op};
use tvp_mem::hierarchy::Hierarchy;
use tvp_obs::cpi::{CpiStack, SlotClass};
use tvp_obs::event::{EventKind, TraceEvent, Tracer};
use tvp_obs::registry::Registry;
use tvp_predictors::btb::Btb;
use tvp_predictors::history::BranchHistory;
use tvp_predictors::indirect::IndirectTargetCache;
use tvp_predictors::ras::Ras;
use tvp_predictors::tage::{Tage, TageToken};
use tvp_predictors::vtage::{Vtage, VtagePred};
use tvp_workloads::trace::{Trace, TraceUop};

use crate::config::{CoreConfig, FuPool, RecoveryPolicy, VpMode};
use crate::inline_vec::{InlineVec, MAX_DST_REGS};
use crate::physreg::PhysName;
use crate::rename::{Dep, ElimCategory, PredApply, RegClass, RenamedUop, Renamer};
use crate::scheduler::Scheduler;
use crate::stats::{sat_add, sat_inc, SimStats};
use crate::storesets::StoreSets;
use tvp_workloads::machine::ArchSnapshot;

/// A µop sitting in the fetch queue.
#[derive(Clone, Debug)]
struct Fetched {
    idx: usize,
    rename_ready: u64,
    tage_token: Option<TageToken>,
    fetch_wait: bool,
    itc_path_at_predict: u64,
}

#[derive(Clone, Debug)]
struct RobEntry {
    idx: usize,
    seq: u64,
    renamed: RenamedUop,
    new_names: InlineVec<(usize, PhysName), MAX_DST_REGS>,
    in_iq: bool,
    issued: bool,
    /// For loads/stores: this entry's position in its LSQ
    /// (`base + len` at push time), giving O(1) seq→index lookup as
    /// `lsq_pos - lq_base`/`- sq_base`. Zero for other µops.
    lsq_pos: u64,
    done_cycle: u64,
    dispatch_ready: u64,
    tage_token: Option<TageToken>,
    vp_token: Option<VtagePred>,
    fetch_wait: bool,
    first_uop: bool,
    itc_path_at_predict: u64,
}

#[derive(Clone, Copy, Debug)]
struct LqEntry {
    seq: u64,
    addr: u64,
    size: u8,
    issued: bool,
    wait_store: Option<u64>,
}

#[derive(Clone, Copy, Debug)]
struct SqEntry {
    seq: u64,
    addr: u64,
    size: u8,
    issued: bool,
    pc: u64,
}

#[derive(Clone, Debug)]
struct Checkpoint {
    seq: u64,
    tage: BranchHistory,
    vtage: Option<BranchHistory>,
    ras: Ras,
    itc_path: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlushKind {
    ValueMispredict,
    MemOrder,
}

#[derive(Clone, Copy, Debug)]
struct PendingFlush {
    at_cycle: u64,
    first_squashed_seq: u64,
    kind: FlushKind,
}

#[derive(Clone, Copy, Debug)]
struct PendingReplay {
    at_cycle: u64,
    seq: u64,
    reg: u16,
}

fn overlap(a_addr: u64, a_size: u8, b_addr: u64, b_size: u8) -> bool {
    // Saturating ends: a range touching the top of the address space
    // must not wrap to 0 and report disjoint (or panic in debug).
    a_addr < b_addr.saturating_add(u64::from(b_size))
        && b_addr < a_addr.saturating_add(u64::from(a_size))
}

/// Conservative summary of the *issued* entries in one load/store
/// queue: how many there are, and a bounding address interval
/// containing all of them. The interval only grows while any issued
/// entry remains and resets when the count reaches zero, so it is
/// always a superset — a load/store whose range misses the interval
/// provably has no issued partner and skips the queue scan entirely.
#[derive(Clone, Copy, Debug)]
struct IssuedWindow {
    count: usize,
    lo: u64,
    hi: u64,
}

impl IssuedWindow {
    fn new() -> Self {
        IssuedWindow { count: 0, lo: u64::MAX, hi: 0 }
    }

    fn add(&mut self, addr: u64, size: u8) {
        self.count += 1;
        self.lo = self.lo.min(addr);
        self.hi = self.hi.max(addr.saturating_add(u64::from(size)));
    }

    fn remove(&mut self) {
        debug_assert!(self.count > 0);
        self.count -= 1;
        if self.count == 0 {
            self.lo = u64::MAX;
            self.hi = 0;
        }
    }

    fn may_overlap(&self, addr: u64, size: u8) -> bool {
        self.count > 0 && addr < self.hi && self.lo < addr.saturating_add(u64::from(size))
    }
}

/// Default event-ring capacity when tracing is enabled without an
/// explicit size (`--trace`, or `TVP_TRACE_EVENTS` set to a
/// non-numeric value such as `on`; a numeric value picks the
/// capacity).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Folds one 64-bit word into an FNV-1a running hash (the commit
/// fingerprint primitive — order-sensitive and allocation-free).
#[inline]
fn fnv_fold(h: &mut u64, word: u64) {
    for b in word.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// FNV-1a offset basis (the commit fingerprint's initial state).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// The simulator core. Construct with a configuration, then
/// [`Core::run`] a trace.
pub struct Core {
    cfg: CoreConfig,
    fu: FuPool,
    tage: Tage,
    btb: Btb,
    ras: Ras,
    itc: IndirectTargetCache,
    vtage: Option<Vtage>,
    mem: Hierarchy,
    renamer: Renamer,
    storesets: StoreSets,

    cycle: u64,
    /// Cycle count at the start of the current measurement segment:
    /// [`Core::run`] reports `cycle - cycle_base` so warmup segments
    /// (see [`Core::begin_measurement`]) are never charged to stats.
    cycle_base: u64,
    cursor: usize,
    fetch_queue: VecDeque<Fetched>,
    fetch_resume: u64,
    fetch_wait_branch: Option<u64>,
    current_line: u64,
    rob: VecDeque<RobEntry>,
    iq_count: usize,
    lq: VecDeque<LqEntry>,
    sq: VecDeque<SqEntry>,
    // LSQ position bases: `*_base` counts every pop_front, so an entry
    // pushed at position `base + len` currently lives at index
    // `position - base` (pop_back shrinks from the tail and
    // invalidates no surviving index or position).
    lq_base: u64,
    sq_base: u64,
    lq_issued: IssuedWindow,
    sq_issued: IssuedWindow,
    sched: Scheduler,
    // Reusable consumer-wakeup scratch — cleared per use, never
    // reallocated on the per-cycle path.
    wake_scratch: Vec<u64>,
    replay_wake_scratch: Vec<u64>,
    checkpoints: VecDeque<Checkpoint>,
    floor: Checkpoint,
    pending_flushes: Vec<PendingFlush>,
    pending_replays: Vec<PendingReplay>,
    // Next-due watermarks: the minimum `at_cycle` over the pending
    // flush/replay sets (`u64::MAX` when empty), so quiet cycles skip
    // the due-filtering entirely instead of re-scanning per cycle.
    flushes_next_due: u64,
    replays_next_due: u64,
    // Reusable scratch (replay wavefront) — cleared per use, never
    // reallocated on the per-cycle path.
    replay_due_scratch: Vec<PendingReplay>,
    replay_poison_scratch: Vec<crate::rename::Dep>,
    silence_until: u64,
    silence_len: u64,
    last_vp_flush: u64,
    int_div_busy: u64,
    fp_div_busy: u64,
    chaos: Option<ChaosEngine>,
    oracle: Option<CommitOracle>,
    divergence: Option<Divergence>,
    watchdog_diag: Option<DeadlockDiagnostic>,
    throttled: bool,
    storm_score: u64,
    next_throttle_eval: u64,
    stats: SimStats,
    // Observability (tvp-obs). All four are observation-only: they
    // read pipeline state but never feed back into it, which is what
    // keeps tracing determinism-neutral.
    tracer: Tracer,
    cpi: CpiStack,
    commit_fp: u64,
    flush_shadow_class: SlotClass,
    flush_shadow_until: u64,
    flush_refill: u64,
    #[cfg(feature = "verif")]
    auditors: Vec<Box<dyn tvp_verif::PipelineAuditor>>,
    #[cfg(feature = "verif")]
    audit_report: tvp_verif::AuditReport,
    #[cfg(feature = "verif")]
    last_committed_seq: Option<u64>,
}

impl Core {
    /// Builds a core.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Self {
        let tage = Tage::new(cfg.tage.clone());
        let vtage = cfg.effective_vtage().map(Vtage::new);
        let ras = Ras::new(32);
        let itc = IndirectTargetCache::new(1024, 12);
        let floor = Checkpoint {
            seq: 0,
            tage: tage.history_checkpoint(),
            vtage: vtage.as_ref().map(Vtage::history_checkpoint),
            ras: ras.clone(),
            itc_path: itc.path_checkpoint(),
        };
        // Environment opt-in for event tracing, read exactly once per
        // core (never on the per-cycle path): `TVP_TRACE_EVENTS` set to
        // a number picks the ring capacity, any other value takes the
        // default. Kept out of CoreConfig so experiment fingerprints
        // (ExpKey) are untouched; tests use [`Core::enable_tracing`].
        // audited(determinism-audit): one env read per core construction
        let tracer = match std::env::var("TVP_TRACE_EVENTS") {
            Ok(v) => Tracer::enabled(match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => DEFAULT_TRACE_CAPACITY,
            }),
            Err(_) => Tracer::disabled(),
        };
        // Front-end refill depth after a flush redirect: how long the
        // ROB stays empty while refetched µops travel to dispatch. The
        // CPI accountant charges that shadow to the flush's class.
        let flush_refill = cfg.redirect_penalty
            + cfg.fetch_to_decode
            + cfg.decode_to_rename
            + cfg.rename_to_dispatch;
        let mut core = Core {
            fu: FuPool::default(),
            btb: Btb::new(8192, 4),
            mem: Hierarchy::new(cfg.mem.clone()),
            renamer: Renamer::new(&cfg),
            storesets: StoreSets::new(2048, 2048),
            tage,
            ras,
            itc,
            vtage,
            cycle: 0,
            cycle_base: 0,
            cursor: 0,
            fetch_queue: VecDeque::new(),
            fetch_resume: 0,
            fetch_wait_branch: None,
            current_line: u64::MAX,
            rob: VecDeque::new(),
            iq_count: 0,
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            lq_base: 0,
            sq_base: 0,
            lq_issued: IssuedWindow::new(),
            sq_issued: IssuedWindow::new(),
            sched: Scheduler::new(cfg.int_regs, cfg.fp_regs),
            wake_scratch: Vec::new(), // audited(no-alloc-in-hot-path): constructor
            replay_wake_scratch: Vec::new(), // audited(no-alloc-in-hot-path): constructor
            checkpoints: VecDeque::new(),
            floor,
            pending_flushes: Vec::new(), // audited(no-alloc-in-hot-path): constructor
            pending_replays: Vec::new(), // audited(no-alloc-in-hot-path): constructor
            flushes_next_due: u64::MAX,
            replays_next_due: u64::MAX,
            replay_due_scratch: Vec::new(), // audited(no-alloc-in-hot-path): constructor
            replay_poison_scratch: Vec::new(), // audited(no-alloc-in-hot-path): constructor
            silence_until: 0,
            silence_len: cfg.silence_cycles,
            last_vp_flush: 0,
            int_div_busy: 0,
            fp_div_busy: 0,
            chaos: cfg.chaos.map(ChaosEngine::new),
            oracle: None,
            divergence: None,
            watchdog_diag: None,
            throttled: false,
            storm_score: 0,
            next_throttle_eval: 0,
            stats: SimStats::default(),
            tracer,
            cpi: CpiStack::default(),
            commit_fp: FNV_OFFSET,
            flush_shadow_class: SlotClass::Frontend,
            flush_shadow_until: 0,
            flush_refill,
            #[cfg(feature = "verif")]
            auditors: tvp_verif::standard_suite(),
            #[cfg(feature = "verif")]
            audit_report: tvp_verif::AuditReport::default(),
            #[cfg(feature = "verif")]
            last_committed_seq: None,
            cfg,
        };
        if core.cfg.spsr_kill_switch {
            core.renamer.set_spsr_enabled(false);
        }
        core
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs the entire trace to completion and returns statistics.
    ///
    /// If the pipeline stops making commit progress for
    /// [`CoreConfig::watchdog_cycles`] cycles, the run stops early and
    /// a structured [`DeadlockDiagnostic`] is available from
    /// [`Core::watchdog_diagnostic`] instead of the process hanging
    /// (the [`simulate`] convenience wrapper still panics on it, with
    /// the full dump as the message).
    pub fn run(&mut self, trace: &Trace) -> SimStats {
        let mut watchdog = Watchdog::new(self.cfg.watchdog_cycles);
        while self.cursor < trace.uops.len() || !self.rob.is_empty() || !self.fetch_queue.is_empty()
        {
            self.step(trace);
            if watchdog.observe(self.cycle, self.stats.uops_retired) {
                let stalled = watchdog.stalled_for(self.cycle);
                self.tracer.record(EventKind::Watchdog, self.cycle, 0, 0, stalled);
                self.watchdog_diag = Some(self.deadlock_diagnostic(trace, stalled));
                break;
            }
        }
        self.stats.cycles = self.cycle - self.cycle_base;
        self.stats.rename = self.renamer.stats();
        // The renamer keeps its own saturation sink; fold it into the
        // headline overflow count so one number still answers "did any
        // counter lose precision this run?".
        self.stats.overflow_events =
            self.stats.overflow_events.saturating_add(self.renamer.overflow_events);
        #[cfg(feature = "verif")]
        self.final_audit();
        self.stats
    }

    /// Runs one trace *segment* on a core that may already be warm.
    ///
    /// Identical to [`Core::run`] except that the replay cursor is
    /// rewound for the new trace: sampled simulation feeds the warmup
    /// and measured windows of an interval as separate bounded traces,
    /// and every microarchitectural structure (caches, TLBs, branch
    /// and value predictors, store sets) carries its warm state across
    /// the boundary. Sequence numbers must keep increasing across
    /// segments — the functional machine's global µop numbering
    /// guarantees this.
    pub fn run_segment(&mut self, trace: &Trace) -> SimStats {
        self.cursor = 0;
        self.current_line = u64::MAX;
        self.run(trace)
    }

    /// Marks the warmup → measured transition of a sampled interval.
    ///
    /// Call between two [`Core::run_segment`] calls, when the pipeline
    /// has drained (which `run` guarantees on return): every statistic
    /// accumulated so far — counters, CPI stack, rename stats, the
    /// commit fingerprint — is discarded, and subsequent stats are
    /// charged from the current cycle. Warm predictor/cache state is
    /// deliberately kept; that is the entire point of warmup.
    pub fn begin_measurement(&mut self) {
        self.stats = SimStats::default();
        self.renamer.stats = crate::stats::RenameStats::default();
        self.renamer.overflow_events = 0;
        self.cpi = CpiStack::default();
        self.commit_fp = FNV_OFFSET;
        self.cycle_base = self.cycle;
    }

    /// Functionally warms long-horizon microarchitectural state —
    /// caches, TLBs, branch predictors, the value predictor — from a
    /// trace segment *without* cycle-accurate simulation and without
    /// charging any statistics.
    ///
    /// Sampled simulation fast-forwards between measured intervals; a
    /// measurement window started on a cold core under-reports IPC for
    /// any workload whose working set or predictor training horizon
    /// exceeds the detailed warmup window (the classic cold-start bias
    /// of sampling). This walks each record in architectural order and
    /// performs only the training side of the pipeline: instruction
    /// and data accesses touch the memory hierarchy, branches run the
    /// predict→history→update sequence the detailed path performs at
    /// fetch + retire, and VP-eligible µops train the value predictor
    /// on their actual results. One pseudo-cycle elapses per µop so
    /// in-flight miss latencies expire naturally.
    ///
    /// Costs a few table lookups per µop — orders of magnitude cheaper
    /// than detailed simulation — and is deterministic: the warmed
    /// state is a pure function of the core's prior state and the
    /// segment's records.
    pub fn functional_warm(&mut self, trace: &Trace) {
        for u in &trace.uops {
            // Instruction-side: line fill plus the same degree-4
            // next-line prefetch the fetch stage issues.
            let line = u.pc >> 6;
            if line != self.current_line {
                let _ = self.mem.inst_access(u.pc, self.cycle);
                for i in 1..=4u64 {
                    self.mem.inst_prefetch(u.pc + i * 64, self.cycle);
                }
                self.current_line = line;
            }

            if let Some(outcome) = u.branch {
                let kind = u.uop.op.branch_kind().expect("branch outcome implies branch");
                match kind {
                    BranchKind::CondDirect => {
                        // Predict-then-update with the same token the
                        // detailed path would carry from fetch to
                        // retire; architectural order makes the two
                        // adjacent here.
                        let token = self.tage.predict(u.pc);
                        self.tage.push_history(outcome.taken);
                        if let Some(vp) = self.vtage.as_mut() {
                            vp.push_history(outcome.taken);
                        }
                        self.tage.update(&token, outcome.taken);
                    }
                    BranchKind::UncondDirect => {}
                    BranchKind::Call => self.ras.push(u.pc + 4),
                    BranchKind::Return => {
                        let _ = self.ras.pop();
                    }
                    BranchKind::Indirect | BranchKind::IndirectCall => {
                        let path = self.itc.path_checkpoint();
                        let _ = self.itc.predict(u.pc);
                        if kind == BranchKind::IndirectCall {
                            self.ras.push(u.pc + 4);
                        }
                        self.itc.update_with_path(u.pc, outcome.target, path);
                    }
                }
                if outcome.taken {
                    self.btb.insert(u.pc, outcome.target, kind);
                    self.itc.push_path(outcome.target);
                    self.current_line = outcome.target >> 6;
                }
            }

            if let Some(addr) = u.mem_addr {
                let _ = self.mem.data_access(u.pc, addr, u.uop.op.is_store(), self.cycle);
            }

            if u.vp_eligible() {
                if let Some(vp) = self.vtage.as_mut() {
                    let pred = vp.predict(Self::vp_key(u));
                    if let Some(actual) = u.result {
                        vp.update(&pred, actual);
                    }
                }
            }

            self.cycle += 1;
        }
    }

    /// Assembles the watchdog's structured dump of the stalled
    /// pipeline.
    fn deadlock_diagnostic(&self, trace: &Trace, stalled_cycles: u64) -> DeadlockDiagnostic {
        let rob_head = self.rob.front().map(|e| RobHeadInfo {
            seq: e.seq,
            pc: trace.uops[e.idx].pc,
            issued: e.issued,
            eliminated: e.renamed.eliminated.is_some(),
            in_iq: e.in_iq,
            done_cycle: e.done_cycle,
        });
        let oldest_mshr = self
            .mem
            .oldest_mshr(self.cycle)
            .map(|(level, line_addr, done_cycle)| MshrInfo { level, line_addr, done_cycle });
        DeadlockDiagnostic {
            cycle: self.cycle,
            uops_retired: self.stats.uops_retired,
            stalled_cycles,
            rob_occupancy: self.rob.len(),
            rob_head,
            iq_occupancy: self.iq_count,
            lq_occupancy: self.lq.len(),
            sq_occupancy: self.sq.len(),
            fetch_queue: self.fetch_queue.len(),
            trace_cursor: self.cursor,
            fetch_resume: self.fetch_resume,
            fetch_wait_branch: self.fetch_wait_branch,
            pending_flushes: self.pending_flushes.len(),
            pending_replays: self.pending_replays.len(),
            silence_until: self.silence_until,
            oldest_mshr,
        }
    }

    /// Advances one cycle.
    fn step(&mut self, trace: &Trace) {
        self.inject_chaos();
        self.update_throttle();
        self.apply_pending_replays(trace);
        self.apply_pending_flush(trace);
        let retired = self.commit(trace);
        self.account_cycle(retired, trace);
        self.issue(trace);
        self.rename(trace);
        self.fetch(trace);
        #[cfg(feature = "verif")]
        self.maybe_audit();
        self.cycle += 1;
    }

    /// CPI-stack attribution for this cycle: `retired` slots are
    /// credited to the base component and the remaining
    /// `commit_width − retired` slots are charged to exactly one loss
    /// class, chosen deterministically from the post-commit pipeline
    /// state. Pure accounting — reads state, never writes it — so the
    /// stack always sums to `cycles × commit_width` and cannot perturb
    /// the simulation.
    fn account_cycle(&mut self, retired: u64, trace: &Trace) {
        let width = self.cfg.commit_width as u64;
        self.cpi.retire(retired);
        if retired >= width {
            return;
        }
        let class = match self.rob.front() {
            // Commit stopped on an unfinished head: memory if the head
            // is waiting on the data path, otherwise back-end
            // latency/contention.
            Some(head) => {
                let op = &trace.uops[head.idx].uop.op;
                if op.is_load() || op.is_store() {
                    SlotClass::Memory
                } else {
                    SlotClass::BackendStructural
                }
            }
            // ROB empty: the front end is starved. Distinguish the
            // refill shadow of a recent flush, a fetch stall on an
            // unresolved mispredicted branch, and plain front-end
            // latency (i-cache misses, redirect bubbles, trace drain).
            None => {
                if self.cycle < self.flush_shadow_until {
                    self.flush_shadow_class
                } else if self.fetch_wait_branch.is_some() {
                    SlotClass::BranchMispredict
                } else {
                    SlotClass::Frontend
                }
            }
        };
        self.cpi.lose(class, width - retired);
    }

    /// Per-cycle fault sites: predictor-table corruption and prefetch
    /// suppression. (Per-event sites — forced VP mispredicts, branch
    /// inversions, cache delays — fire inline at rename, fetch and
    /// issue.) Each site rolls independently and zero-rate sites
    /// consume no entropy, so one campaign's decisions replay exactly
    /// from its seed.
    fn inject_chaos(&mut self) {
        let Some(ch) = self.chaos.as_mut() else { return };
        if ch.fire(FaultKind::VtageCorrupt) {
            let r = ch.entropy();
            if self.vtage.as_mut().is_some_and(|vp| vp.inject_fault(r)) {
                sat_inc(&mut self.stats.chaos.vtage_corruptions, &mut self.stats.overflow_events);
            }
        }
        if ch.fire(FaultKind::TageCorrupt) {
            let r = ch.entropy();
            self.tage.inject_fault(r);
            sat_inc(&mut self.stats.chaos.tage_corruptions, &mut self.stats.overflow_events);
        }
        if ch.fire(FaultKind::BtbCorrupt) {
            let r = ch.entropy();
            if self.btb.inject_fault(r) {
                sat_inc(&mut self.stats.chaos.btb_corruptions, &mut self.stats.overflow_events);
            }
        }
        if ch.fire(FaultKind::StoreSetCorrupt) {
            let r = ch.entropy();
            self.storesets.inject_fault(r);
            sat_inc(&mut self.stats.chaos.storeset_corruptions, &mut self.stats.overflow_events);
        }
        let drop_prefetch = ch.fire(FaultKind::PrefetchDrop);
        self.mem.set_prefetch_suppressed(drop_prefetch);
        if drop_prefetch {
            sat_inc(&mut self.stats.chaos.prefetch_drop_cycles, &mut self.stats.overflow_events);
        }
    }

    /// Graceful degradation: when value mispredictions storm (score is
    /// fed at validation), disable VP use and SpSR until the storm
    /// subsides. Evaluated once per throttle window with exponential
    /// decay of the score, engaging at the threshold and disengaging
    /// below half of it (hysteresis).
    fn update_throttle(&mut self) {
        if !self.cfg.auto_throttle {
            return;
        }
        if self.cycle >= self.next_throttle_eval {
            if !self.throttled && self.storm_score >= self.cfg.throttle_threshold {
                self.throttled = true;
                self.renamer.set_spsr_enabled(false);
                sat_inc(
                    &mut self.stats.degrade.throttle_engagements,
                    &mut self.stats.overflow_events,
                );
            } else if self.throttled && self.storm_score < self.cfg.throttle_threshold / 2 {
                self.throttled = false;
                self.renamer.set_spsr_enabled(self.cfg.spsr && !self.cfg.spsr_kill_switch);
            }
            self.storm_score /= 2;
            self.next_throttle_eval = self.cycle + self.cfg.throttle_window.max(1);
        }
        if self.throttled {
            sat_inc(&mut self.stats.degrade.throttled_cycles, &mut self.stats.overflow_events);
        }
    }

    // ----------------------------------------------------------------
    // commit
    // ----------------------------------------------------------------

    /// Retires up to `commit_width` finished µops; returns how many
    /// retired this cycle (the CPI stack's base credit).
    fn commit(&mut self, trace: &Trace) -> u64 {
        let mut retired: u64 = 0;
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !(head.renamed.eliminated.is_some() || head.issued) || head.done_cycle > self.cycle {
                break;
            }
            let entry = self.rob.pop_front().expect("head exists");
            let u = &trace.uops[entry.idx];

            // Golden-model lockstep check: re-execute the committed µop
            // through the functional semantics; the first divergence is
            // recorded (with the replaying chaos seed and the traced
            // last-N-event history) and the oracle goes quiet.
            if let Some(oracle) = self.oracle.as_mut() {
                if let Err(d) = oracle.on_commit(u) {
                    if self.divergence.is_none() {
                        let seed = self.chaos.as_ref().map(ChaosEngine::seed);
                        self.divergence =
                            Some(d.with_seed(seed).with_history(self.tracer.snapshot()));
                    }
                }
            }

            if u.uop.op.is_store() {
                let addr = u.mem_addr.expect("store has an address");
                let _ = self.mem.data_access(u.pc, addr, true, self.cycle);
                let popped = self.sq.pop_front();
                debug_assert_eq!(popped.map(|s| s.seq), Some(entry.seq));
                self.sq_base += 1;
                if popped.is_some_and(|s| s.issued) {
                    self.sq_issued.remove();
                }
                self.storesets.store_completed(u.pc, entry.seq);
            }
            if u.uop.op.is_load() {
                let popped = self.lq.pop_front();
                debug_assert_eq!(popped.map(|l| l.seq), Some(entry.seq));
                self.lq_base += 1;
                if popped.is_some_and(|l| l.issued) {
                    self.lq_issued.remove();
                }
            }
            self.renamer.commit_with_names(&entry.new_names);

            // Train predictors in retirement order.
            if let Some(token) = entry.tage_token.as_ref() {
                let outcome = u.branch.expect("token implies branch");
                self.tage.update(token, outcome.taken);
            }
            if let Some(b) = u.branch {
                let kind = u.uop.op.branch_kind().expect("branch outcome implies branch");
                if b.taken {
                    self.btb.insert(u.pc, b.target, kind);
                }
                if matches!(
                    kind,
                    BranchKind::Indirect | BranchKind::IndirectCall | BranchKind::Return
                ) {
                    self.itc.update_with_path(u.pc, b.target, entry.itc_path_at_predict);
                }
            }
            if let (Some(vp), Some(token)) = (self.vtage.as_mut(), entry.vp_token.as_ref()) {
                if let Some(actual) = u.result {
                    vp.update(token, actual);
                }
            }

            // Advance the history checkpoint floor past this µop.
            while self.checkpoints.front().is_some_and(|c| c.seq <= entry.seq) {
                self.floor = self.checkpoints.pop_front().expect("front exists");
            }

            sat_inc(&mut self.stats.uops_retired, &mut self.stats.overflow_events);
            if entry.first_uop {
                sat_inc(&mut self.stats.insts_retired, &mut self.stats.overflow_events);
            }
            retired += 1;
            // Order-sensitive commit fingerprint over (seq, pc) — the
            // determinism-neutrality witness (always on; a few integer
            // ops per retirement).
            fnv_fold(&mut self.commit_fp, entry.seq);
            fnv_fold(&mut self.commit_fp, u.pc);
            self.tracer.record(EventKind::Commit, self.cycle, entry.seq, u.pc, 0);
            #[cfg(feature = "verif")]
            {
                self.last_committed_seq = Some(entry.seq);
            }
        }
        retired
    }

    // ----------------------------------------------------------------
    // issue / execute
    // ----------------------------------------------------------------

    /// O(1) seq→ROB-index. The ROB is seq-contiguous in normal
    /// operation (the trace assigns consecutive seqs and a flush
    /// squashes a contiguous suffix), so `seq - front.seq` is the
    /// index; the `SkipCursorRollback` sabotage deliberately creates
    /// gaps, and the age-sorted deque then falls back to binary
    /// search.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        let idx = usize::try_from(seq.checked_sub(front)?).ok()?;
        if idx < self.rob.len() && self.rob[idx].seq == seq {
            return Some(idx);
        }
        self.rob.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// The µop's first operand whose value is unavailable this cycle
    /// (`None` means every dependence is ready). This is the old
    /// per-candidate `deps_ready` poll, now evaluated only on wakeup
    /// events and at select re-verification — not per IQ entry per
    /// cycle.
    fn first_unready_dep(&self, renamed: &RenamedUop) -> Option<Dep> {
        renamed.deps.iter().copied().find(|d| self.renamer.file(d.class).ready_at(d.p) > self.cycle)
    }

    /// Evaluates `seq` for wakeup: a live, un-issued IQ entry past its
    /// dispatch latency either enters the ready set (all operands
    /// available) or subscribes to its first not-ready operand's
    /// consumer list. Everything else is a no-op — stale events from
    /// squashed-and-reused seqs or superseded writebacks re-evaluate
    /// current truth and die here, which is what makes the event
    /// machinery equivalence-safe.
    fn try_wake(&mut self, seq: u64) {
        let Some(i) = self.rob_index(seq) else { return };
        let e = &self.rob[i];
        if !e.in_iq || e.issued || e.dispatch_ready > self.cycle {
            // Not (yet) a candidate; if the dispatch latency has not
            // elapsed, the dispatch-FIFO event still covers it.
            return;
        }
        match self.first_unready_dep(&e.renamed) {
            None => self.sched.insert_ready(seq),
            Some(d) => self.sched.subscribe(d.class, d.p, seq),
        }
    }

    /// Wakes every consumer subscribed to `(class, p)` — called when
    /// the register's value becomes available.
    fn wake_consumers(&mut self, class: RegClass, p: u16) {
        let mut scratch = std::mem::take(&mut self.wake_scratch);
        scratch.clear();
        self.sched.drain_consumers(class, p, &mut scratch);
        for &seq in &scratch {
            self.try_wake(seq);
        }
        self.wake_scratch = scratch;
    }

    /// Register writeback: `(class, p)` becomes readable at `at`,
    /// always a future cycle (minimum FU latency is one), so consumers
    /// are woken by a scheduled event instead of polling.
    fn write_back(&mut self, class: RegClass, p: u16, at: u64) {
        debug_assert!(at > self.cycle);
        self.renamer.file_mut(class).set_ready(p, at);
        self.sched.schedule_wake(at, class, p);
    }

    /// Arms a pending flush and maintains the next-due watermark.
    fn push_flush(&mut self, f: PendingFlush) {
        self.flushes_next_due = self.flushes_next_due.min(f.at_cycle);
        self.pending_flushes.push(f);
    }

    /// Arms a pending replay and maintains the next-due watermark.
    fn push_replay(&mut self, r: PendingReplay) {
        self.replays_next_due = self.replays_next_due.min(r.at_cycle);
        self.pending_replays.push(r);
    }

    /// Fires this cycle's wakeup events: µops reaching dispatch, and
    /// register writebacks completing now. A writeback event is stale
    /// — skipped, keeping its subscribers — unless the register still
    /// becomes ready at exactly the event's cycle; a replay may have
    /// un-produced the register after the event was scheduled.
    fn wake_due(&mut self) {
        while let Some(seq) = self.sched.pop_due_dispatch(self.cycle) {
            self.try_wake(seq);
        }
        while let Some((at, class, p)) = self.sched.pop_due_wake(self.cycle) {
            if self.renamer.file(class).ready_at(p) == at {
                self.wake_consumers(class, p);
            }
        }
    }

    fn issue(&mut self, trace: &Trace) {
        self.wake_due();
        let mut issued_total = 0usize;
        let mut class_counts = [0usize; 12];
        let class_slot = |c: ExecClass| -> usize {
            match c {
                ExecClass::IntAlu | ExecClass::Branch | ExecClass::Nop => 0,
                ExecClass::IntMul => 1,
                ExecClass::IntDiv => 2,
                ExecClass::FpAlu => 3,
                ExecClass::FpMul | ExecClass::FpMac => 4,
                ExecClass::FpDiv => 5,
                ExecClass::Load => 6,
                ExecClass::Store => 7,
            }
        };
        let fu_cap = |pool: &FuPool, slot: usize| -> usize {
            match slot {
                0 => pool.int_alu,
                1 => pool.int_mul,
                2 => pool.int_div,
                3 => pool.fp_alu,
                4 => pool.fp_mul,
                5 => pool.fp_div,
                6 => pool.load,
                7 => pool.store,
                _ => 0,
            }
        };

        // Select: walk the ready set oldest-first, re-verifying the
        // full issue predicate per candidate. The set is a *superset*
        // of the issuable µops (wakeup inserts optimistically, and a
        // replay can un-ready an operand after insertion), so
        // verification failures evict and re-subscribe, while
        // structural rejections — FU caps, busy dividers, store-set
        // gates — keep the entry for later cycles exactly as the old
        // O(ROB) scan's `continue` did. Every candidate is visited in
        // seq (= age) order under the same width and per-slot caps, so
        // the selected set each cycle is identical to the scan's.
        let mut next_seq = 0u64;
        while issued_total < self.cfg.issue_width {
            let Some(seq) = self.sched.first_ready_at_or_after(next_seq) else { break };
            next_seq = seq + 1;
            let Some(i) = self.rob_index(seq) else {
                self.sched.remove_ready(seq);
                continue;
            };
            let entry = &self.rob[i];
            if !entry.in_iq || entry.issued || entry.dispatch_ready > self.cycle {
                self.sched.remove_ready(seq);
                continue;
            }
            let u = &trace.uops[entry.idx];
            let class = u.uop.op.exec_class();
            let slot = class_slot(class);
            if class_counts[slot] >= fu_cap(&self.fu, slot) {
                continue;
            }
            if let Some(d) = self.first_unready_dep(&entry.renamed) {
                // An operand was un-produced after this µop woke
                // (poisoned VP replay); wait on it like any other.
                self.sched.remove_ready(seq);
                self.sched.subscribe(d.class, d.p, seq);
                continue;
            }
            // Non-pipelined dividers.
            match class {
                ExecClass::IntDiv if self.int_div_busy > self.cycle => continue,
                ExecClass::FpDiv if self.fp_div_busy > self.cycle => continue,
                _ => {}
            }
            // Load/store queue constraints.
            let mut completion = self.cycle + self.cfg.latency(class);
            match class {
                ExecClass::Load => {
                    let lq_idx = (entry.lsq_pos - self.lq_base) as usize;
                    let lq_entry = self.lq[lq_idx];
                    debug_assert_eq!(lq_entry.seq, seq);
                    // Store-set gate: wait for the predicted store
                    // (O(log SQ) on the seq-sorted queue).
                    if let Some(dep) = lq_entry.wait_store {
                        let gated = match self.sq.binary_search_by_key(&dep, |s| s.seq) {
                            Ok(si) => !self.sq[si].issued,
                            Err(_) => false,
                        };
                        if gated {
                            continue;
                        }
                    }
                    // Store-to-load forwarding from an older executed
                    // matching store. Only existence matters (the
                    // youngest-first orientation of the old scan chose
                    // among equals, but any match forwards), so the
                    // scan is bounded to older stores and skipped
                    // outright when the load's range misses the
                    // issued-store address window.
                    let forward = self.sq_issued.may_overlap(lq_entry.addr, lq_entry.size) && {
                        let older = self.sq.partition_point(|s| s.seq < seq);
                        self.sq.iter().take(older).any(|s| {
                            s.issued && overlap(s.addr, s.size, lq_entry.addr, lq_entry.size)
                        })
                    };
                    if forward {
                        completion = self.cycle + 4;
                    } else {
                        completion = self.mem.data_access(u.pc, lq_entry.addr, false, self.cycle);
                    }
                    // Chaos: perturb load latency (timing-only fault).
                    if let Some(ch) = self.chaos.as_mut() {
                        if ch.fire(FaultKind::CacheDelay) {
                            completion += ch.extra_delay();
                            sat_inc(
                                &mut self.stats.chaos.cache_delays,
                                &mut self.stats.overflow_events,
                            );
                        }
                    }
                    self.lq[lq_idx].issued = true;
                    self.lq_issued.add(lq_entry.addr, lq_entry.size);
                }
                ExecClass::Store => {
                    let sq_idx = (entry.lsq_pos - self.sq_base) as usize;
                    let sq_entry = &mut self.sq[sq_idx];
                    debug_assert_eq!(sq_entry.seq, seq);
                    sq_entry.issued = true;
                    let (s_addr, s_size, s_pc) = (sq_entry.addr, sq_entry.size, sq_entry.pc);
                    self.sq_issued.add(s_addr, s_size);
                    // Memory-ordering violation: a younger load already
                    // issued with an overlapping address. The LQ is
                    // seq-sorted, so the first younger match *is* the
                    // minimum; the scan is skipped when the store's
                    // range misses the issued-load address window.
                    let violating = if self.lq_issued.may_overlap(s_addr, s_size) {
                        let younger = self.lq.partition_point(|l| l.seq <= seq);
                        self.lq
                            .iter()
                            .skip(younger)
                            .find(|l| l.issued && overlap(l.addr, l.size, s_addr, s_size))
                            .map(|l| l.seq)
                    } else {
                        None
                    };
                    if let Some(load_seq) = violating {
                        let load_idx = self
                            .rob_index(load_seq)
                            .map(|li| self.rob[li].idx)
                            .expect("violating load is in the ROB");
                        let load_pc = trace.uops[load_idx].pc;
                        self.storesets.violation(load_pc, s_pc);
                        self.push_flush(PendingFlush {
                            at_cycle: completion,
                            first_squashed_seq: load_seq,
                            kind: FlushKind::MemOrder,
                        });
                    }
                }
                ExecClass::IntDiv => self.int_div_busy = completion,
                ExecClass::FpDiv => self.fp_div_busy = completion,
                _ => {}
            }

            // Value prediction validation, in place at the FU (§3.3).
            if let Some((predicted, apply)) = self.rob[i].renamed.predicted {
                let actual = u.result.expect("VP-eligible µops produce a value");
                if predicted != actual {
                    self.tracer.record(
                        EventKind::ValueMispredict,
                        self.cycle,
                        seq,
                        u.pc,
                        predicted,
                    );
                    // MVP/TVP must refetch the mispredicted µop itself
                    // (§3.4); GVP has a register to repair in place but
                    // still flushes younger consumers — unless the
                    // Replay recovery policy repairs them selectively.
                    let include_self = apply == PredApply::Named;
                    let wide_reg = self.rob[i].renamed.dest_alloc.map(|(_, p)| p);
                    let replay_reg = (!include_self && self.cfg.recovery == RecoveryPolicy::Replay)
                        .then_some(wide_reg)
                        .flatten();
                    if let Some(reg) = replay_reg {
                        self.push_replay(PendingReplay { at_cycle: completion, seq, reg });
                    } else {
                        self.push_flush(PendingFlush {
                            at_cycle: completion,
                            first_squashed_seq: if include_self { seq } else { seq + 1 },
                            kind: FlushKind::ValueMispredict,
                        });
                    }
                    sat_inc(&mut self.stats.vp.incorrect_used, &mut self.stats.overflow_events);
                    self.storm_score = self.storm_score.saturating_add(1);
                } else {
                    sat_inc(&mut self.stats.vp.correct_used, &mut self.stats.overflow_events);
                }
            }

            // Branch resolution un-stalls fetch.
            if self.rob[i].fetch_wait {
                completion = completion.max(self.cycle + 1);
                if self.fetch_wait_branch == Some(seq) {
                    self.fetch_wait_branch = None;
                    self.fetch_resume = completion + self.cfg.redirect_penalty;
                }
            }

            // Register writeback scheduling. The µop also frees its
            // scheduler slot here (this was a separate per-cycle
            // `drain_issued_iq` ROB walk; nothing reads `in_iq`
            // between issue and that walk, so folding it in is
            // behavior-identical).
            let entry = &mut self.rob[i];
            entry.issued = true;
            entry.done_cycle = completion;
            entry.in_iq = false;
            self.iq_count -= 1;
            let dest_alloc = entry.renamed.dest_alloc;
            let flags_alloc = entry.renamed.flags_alloc;
            let unpredicted = entry.renamed.predicted.is_none();
            let prf_reads = u64::from(entry.renamed.prf_reads);
            self.sched.remove_ready(seq);
            if let Some((class, p)) = dest_alloc {
                // GVP wide predictions were made ready at rename; the
                // µop still performs its datapath write at execute
                // (validation is a compare at the FU, §3.3), so the
                // write port is exercised either way.
                if unpredicted {
                    self.write_back(class, p, completion);
                }
                if class == RegClass::Int {
                    sat_inc(
                        &mut self.stats.activity.int_prf_writes,
                        &mut self.stats.overflow_events,
                    );
                }
            }
            if let Some(p) = flags_alloc {
                self.write_back(RegClass::Int, p, completion);
                sat_inc(&mut self.stats.activity.int_prf_writes, &mut self.stats.overflow_events);
            }
            // Predicted µops with named destinations write no register.
            sat_add(
                &mut self.stats.activity.int_prf_reads,
                prf_reads,
                &mut self.stats.overflow_events,
            );
            sat_inc(&mut self.stats.activity.iq_issued, &mut self.stats.overflow_events);
            self.tracer.record(EventKind::Issue, self.cycle, seq, u.pc, 0);
            class_counts[slot] += 1;
            issued_total += 1;
        }
    }

    // ----------------------------------------------------------------
    // rename / dispatch
    // ----------------------------------------------------------------

    fn vp_key(u: &TraceUop) -> u64 {
        u.pc | (u64::from(!u.first_uop) * 2)
    }

    fn rename(&mut self, trace: &Trace) {
        for _ in 0..self.cfg.rename_width {
            let Some(front) = self.fetch_queue.front() else { break };
            if front.rename_ready > self.cycle {
                break;
            }
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let idx = front.idx;
            let u = &trace.uops[idx];
            // LSQ capacity.
            if u.uop.op.is_load() && self.lq.len() >= self.cfg.lq_size {
                break;
            }
            if u.uop.op.is_store() && self.sq.len() >= self.cfg.sq_size {
                break;
            }

            // Value prediction lookup (always, for training; used only
            // when confident, admissible and not silenced).
            let mut vp_token = None;
            let mut prediction = None;
            if let Some(vp) = self.vtage.as_mut() {
                if u.vp_eligible() {
                    let pred = vp.predict(Self::vp_key(u));
                    sat_inc(&mut self.stats.vp.eligible, &mut self.stats.overflow_events);
                    let mode = self.cfg.vp.pred_mode().expect("vtage implies a mode");
                    if pred.confident && mode.admits(pred.value) {
                        if self.cycle < self.silence_until {
                            sat_inc(
                                &mut self.stats.vp.silenced_lookups,
                                &mut self.stats.overflow_events,
                            );
                        } else if self.cfg.vp_kill_switch {
                            // Graceful degradation: the kill-switch
                            // suppresses use (training continues).
                            sat_inc(
                                &mut self.stats.degrade.killswitch_suppressed,
                                &mut self.stats.overflow_events,
                            );
                        } else if self.throttled {
                            sat_inc(
                                &mut self.stats.degrade.throttle_suppressed,
                                &mut self.stats.overflow_events,
                            );
                        } else {
                            prediction = Some(pred.value);
                        }
                    }
                    vp_token = Some(pred);
                }
            }

            // Chaos: force a used prediction wrong. The forced value
            // (0, or 1 when the actual result is 0) is admissible in
            // every prediction mode and always differs from the actual
            // result, so validation at issue must flush and recover.
            // Silencing/suppression above still apply — a forced
            // mispredict cannot livelock the pipeline.
            if prediction.is_some() {
                if let Some(ch) = self.chaos.as_mut() {
                    if ch.fire(FaultKind::VpForceMispredict) {
                        let actual = u.result.expect("VP-eligible µops produce a value");
                        prediction = Some(u64::from(actual == 0));
                        sat_inc(
                            &mut self.stats.chaos.vp_forced_mispredicts,
                            &mut self.stats.overflow_events,
                        );
                    }
                }
            }

            let Ok(renamed) = self.renamer.rename_uop(&u.uop, u.first_uop, prediction) else {
                // Out of physical registers; retry next cycle (the
                // retry will re-count eligibility, so back it out).
                if vp_token.is_some() {
                    // audited(saturating-counter): backs out this cycle's increment
                    self.stats.vp.eligible -= 1;
                }
                break;
            };
            if prediction.is_some() {
                sat_inc(&mut self.stats.vp.used, &mut self.stats.overflow_events);
            }

            // IQ capacity — checked after rename so eliminated µops
            // (which skip the IQ) are not throttled by a full
            // scheduler. Roll the rename back if we cannot dispatch.
            let needs_iq = renamed.eliminated.is_none();
            if needs_iq && self.iq_count >= self.cfg.iq_size {
                self.renamer.rollback(&renamed);
                // Back out the optimistic rename statistics (each
                // decrement reverses an increment made this cycle, so
                // underflow is impossible).
                // audited(saturating-counter): backs out this cycle's increment
                self.renamer.stats.uops -= 1;
                if u.first_uop {
                    // audited(saturating-counter): backs out this cycle's increment
                    self.renamer.stats.arch_insts -= 1;
                }
                if prediction.is_some() {
                    // audited(saturating-counter): backs out this cycle's increment
                    self.stats.vp.used -= 1;
                }
                if vp_token.is_some() {
                    // audited(saturating-counter): backs out this cycle's increment
                    self.stats.vp.eligible -= 1;
                }
                break;
            }

            let fetched = self.fetch_queue.pop_front().expect("front exists");
            let mut new_names: InlineVec<(usize, PhysName), MAX_DST_REGS> = InlineVec::new();
            for &(dense, _) in &renamed.undo {
                new_names.push((dense, self.renamer.rat_entry(dense)));
            }

            // A freshly allocated register has no live consumers; drop
            // wakeup subscriptions left over from a squashed previous
            // lifetime of the same physical register.
            if let Some((class, p)) = renamed.dest_alloc {
                self.sched.clear_consumers(class, p);
            }
            if let Some(p) = renamed.flags_alloc {
                self.sched.clear_consumers(RegClass::Int, p);
            }

            let mut lsq_pos = 0u64;
            if u.uop.op.is_load() {
                lsq_pos = self.lq_base + self.lq.len() as u64;
                self.lq.push_back(LqEntry {
                    seq: u.seq,
                    addr: u.mem_addr.expect("load has an address"),
                    size: match u.uop.op {
                        Op::Load { size, .. } => size,
                        // audited(no-panic-in-hot-path): guarded by is_load() on the µop above
                        _ => unreachable!(),
                    },
                    issued: false,
                    wait_store: self.storesets.load_dependency(u.pc),
                });
            }
            if u.uop.op.is_store() {
                // audited(no-panic-in-hot-path): guarded by is_store() on the µop above
                let Op::Store { size } = u.uop.op else { unreachable!() };
                lsq_pos = self.sq_base + self.sq.len() as u64;
                self.sq.push_back(SqEntry {
                    seq: u.seq,
                    addr: u.mem_addr.expect("store has an address"),
                    size,
                    issued: false,
                    pc: u.pc,
                });
                let _ = self.storesets.store_dispatched(u.pc, u.seq);
            }

            // GVP wide predictions are written to the PRF at rename —
            // the extra write ports the paper charges GVP for (§6.2).
            if matches!(renamed.predicted, Some((_, PredApply::WidePrfWrite))) {
                sat_inc(&mut self.stats.activity.int_prf_writes, &mut self.stats.overflow_events);
            }

            // SpSR-resolved branch: redirect/unstall the front-end at
            // rename instead of execute.
            if renamed.resolved_branch.is_some() && self.fetch_wait_branch == Some(u.seq) {
                self.fetch_wait_branch = None;
                self.fetch_resume = self.cycle + 1;
            }

            let eliminated = renamed.eliminated.is_some();
            if needs_iq {
                self.iq_count += 1;
                sat_inc(&mut self.stats.activity.iq_dispatched, &mut self.stats.overflow_events);
            }
            self.tracer.record(EventKind::Rename, self.cycle, u.seq, u.pc, 0);
            let dispatch_ready = self.cycle + self.cfg.rename_to_dispatch;
            self.rob.push_back(RobEntry {
                idx,
                seq: u.seq,
                renamed,
                new_names,
                in_iq: needs_iq,
                issued: false,
                lsq_pos,
                done_cycle: if eliminated { self.cycle + 1 } else { u64::MAX },
                dispatch_ready,
                tage_token: fetched.tage_token,
                vp_token,
                fetch_wait: fetched.fetch_wait,
                first_uop: u.first_uop,
                itc_path_at_predict: fetched.itc_path_at_predict,
            });
            if needs_iq {
                // Wakeup evaluation fires when the dispatch latency
                // elapses (the FIFO is pushed in rename order with a
                // constant offset, so due cycles stay sorted).
                self.sched.push_dispatch(dispatch_ready, u.seq);
            }
        }
    }

    // ----------------------------------------------------------------
    // fetch
    // ----------------------------------------------------------------

    fn fetch(&mut self, trace: &Trace) {
        if self.cycle < self.fetch_resume || self.fetch_wait_branch.is_some() {
            return;
        }
        let mut fetched = 0usize;
        while fetched < self.cfg.fetch_width
            && self.fetch_queue.len() < self.cfg.fetch_queue
            && self.cursor < trace.uops.len()
        {
            let u = &trace.uops[self.cursor];
            // Instruction cache.
            let line = u.pc >> 6;
            if line != self.current_line {
                let done = self.mem.inst_access(u.pc, self.cycle);
                // Sequential next-line instruction prefetch (degree 4),
                // so a cold code sweep overlaps its line fills instead
                // of serialising one DRAM round-trip per 64B.
                for i in 1..=4u64 {
                    self.mem.inst_prefetch(u.pc + i * 64, self.cycle);
                }
                if done > self.cycle + 1 {
                    self.fetch_resume = done;
                    return;
                }
                self.current_line = line;
            }

            let itc_path_at_predict = self.itc.path_checkpoint();
            let mut tage_token = None;
            let mut fetch_wait = false;
            let mut taken_bubble = false;
            if let Some(outcome) = u.branch {
                let kind = u.uop.op.branch_kind().expect("branch outcome implies branch");
                let mut mispredicted = false;
                match kind {
                    BranchKind::CondDirect => {
                        let token = self.tage.predict(u.pc);
                        mispredicted |= token.taken != outcome.taken;
                        self.tage.push_history(outcome.taken);
                        if let Some(vp) = self.vtage.as_mut() {
                            vp.push_history(outcome.taken);
                        }
                        tage_token = Some(token);
                        if outcome.taken && !mispredicted && self.btb.lookup(u.pc).is_none() {
                            // Decode-stage mistarget bubble.
                            self.fetch_resume = self.cycle + self.cfg.btb_miss_penalty;
                            taken_bubble = true;
                        }
                    }
                    BranchKind::UncondDirect | BranchKind::Call => {
                        if self.btb.lookup(u.pc).is_none() {
                            self.fetch_resume = self.cycle + self.cfg.btb_miss_penalty;
                            taken_bubble = true;
                        }
                        if kind == BranchKind::Call {
                            self.ras.push(u.pc + 4);
                        }
                    }
                    BranchKind::Return => {
                        let predicted = self.ras.pop();
                        mispredicted |= predicted != Some(outcome.target);
                    }
                    BranchKind::Indirect | BranchKind::IndirectCall => {
                        let predicted = self.itc.predict(u.pc);
                        mispredicted |= predicted != Some(outcome.target);
                        if kind == BranchKind::IndirectCall {
                            self.ras.push(u.pc + 4);
                        }
                    }
                }
                // Chaos: invert the misprediction verdict. Both
                // directions are timing-only in a trace-driven model —
                // a spurious "mispredict" stalls fetch until the branch
                // resolves; a masked one skips the stall.
                if let Some(ch) = self.chaos.as_mut() {
                    if ch.fire(FaultKind::BranchInvert) {
                        mispredicted = !mispredicted;
                        sat_inc(
                            &mut self.stats.chaos.branch_inversions,
                            &mut self.stats.overflow_events,
                        );
                    }
                }
                if outcome.taken {
                    self.itc.push_path(outcome.target);
                    self.current_line = outcome.target >> 6;
                }
                // Checkpoint speculative front-end state after this
                // branch, for later squash recovery.
                self.checkpoints.push_back(Checkpoint {
                    seq: u.seq,
                    tage: self.tage.history_checkpoint(),
                    vtage: self.vtage.as_ref().map(Vtage::history_checkpoint),
                    ras: self.ras.clone(),
                    itc_path: self.itc.path_checkpoint(),
                });
                if mispredicted {
                    sat_inc(
                        &mut self.stats.flush.branch_mispredicts,
                        &mut self.stats.overflow_events,
                    );
                    self.tracer.record(EventKind::BranchMispredict, self.cycle, u.seq, u.pc, 1);
                    fetch_wait = true;
                    self.fetch_wait_branch = Some(u.seq);
                } else if outcome.taken && !taken_bubble {
                    self.fetch_resume = self.cycle + 1 + self.cfg.taken_branch_penalty;
                    taken_bubble = true;
                }
            }

            self.fetch_queue.push_back(Fetched {
                idx: self.cursor,
                rename_ready: self.cycle + self.cfg.fetch_to_decode + self.cfg.decode_to_rename,
                tage_token,
                fetch_wait,
                itc_path_at_predict,
            });
            self.cursor += 1;
            fetched += 1;
            if fetch_wait || taken_bubble {
                return;
            }
        }
    }

    // ----------------------------------------------------------------
    // replay (RecoveryPolicy::Replay, GVP wide predictions)
    // ----------------------------------------------------------------

    /// Selectively re-executes the direct and indirect consumers of a
    /// mispredicted (wide, GVP) value: the register is repaired in
    /// place, issued consumers are reset to re-issue with the correct
    /// value, and their own destinations propagate the poison set
    /// transitively (paper §2.2's "replay wavefront"). Falls back to a
    /// flush when the scheduler cannot reabsorb the wavefront.
    fn apply_pending_replays(&mut self, trace: &Trace) {
        // Next-due watermark: quiet cycles (the overwhelmingly common
        // case) skip the due filter entirely.
        if self.pending_replays.is_empty() || self.cycle < self.replays_next_due {
            return;
        }
        let mut due = std::mem::take(&mut self.replay_due_scratch);
        due.clear();
        due.extend(self.pending_replays.iter().copied().filter(|r| r.at_cycle <= self.cycle));
        self.pending_replays.retain(|r| r.at_cycle > self.cycle);
        self.replays_next_due =
            self.pending_replays.iter().map(|r| r.at_cycle).min().unwrap_or(u64::MAX);
        let mut poisoned = std::mem::take(&mut self.replay_poison_scratch);
        let mut rewake = std::mem::take(&mut self.replay_wake_scratch);
        for &replay in &due {
            // The mispredicted µop may have been squashed by an older
            // flush in the meantime; its repair is then moot.
            let Some(start) = self.rob_index(replay.seq) else {
                continue;
            };
            // Guard against the replay tornado: silence the predictor
            // exactly as a flush would (§3.4.1).
            self.silence_until = self.cycle + self.silence_len;
            sat_inc(&mut self.stats.flush.vp_replays, &mut self.stats.overflow_events);

            // The repaired value becomes available now — wake anything
            // already waiting on it (this replaces the old per-cycle
            // readiness poll noticing the repair).
            self.renamer.file_mut(RegClass::Int).set_ready(replay.reg, self.cycle);
            self.wake_consumers(RegClass::Int, replay.reg);

            poisoned.clear();
            poisoned.push(Dep { class: RegClass::Int, p: replay.reg });
            rewake.clear();
            let mut fallback_flush = false;
            for i in (start + 1)..self.rob.len() {
                let entry = &self.rob[i];
                if !entry.issued {
                    continue; // unissued consumers wait naturally
                }
                let consumes = entry.renamed.deps.iter().any(|d| poisoned.contains(d));
                if !consumes {
                    continue;
                }
                // Needs a scheduler slot to re-issue from.
                if !entry.in_iq && self.iq_count >= self.cfg.iq_size {
                    fallback_flush = true;
                    break;
                }
                let seq = entry.seq;
                let lsq_pos = entry.lsq_pos;
                let entry = &mut self.rob[i];
                entry.issued = false;
                entry.done_cycle = u64::MAX;
                if !entry.in_iq {
                    entry.in_iq = true;
                    self.iq_count += 1;
                }
                // Un-produce its outputs and extend the wavefront. Any
                // writeback wake event still in flight for these
                // registers is now stale: it will fail the `ready_at`
                // validation and die without waking anyone.
                if let Some((class, p)) = entry.renamed.dest_alloc {
                    self.renamer.file_mut(class).set_ready(p, u64::MAX);
                    poisoned.push(Dep { class, p });
                }
                if let Some(p) = entry.renamed.flags_alloc {
                    self.renamer.file_mut(RegClass::Int).set_ready(p, u64::MAX);
                    poisoned.push(Dep { class: RegClass::Int, p });
                }
                let u = &trace.uops[self.rob[i].idx];
                if u.uop.op.is_load() {
                    let lq_idx = (lsq_pos - self.lq_base) as usize;
                    if let Some(l) = self.lq.get_mut(lq_idx) {
                        debug_assert_eq!(l.seq, seq);
                        if l.issued {
                            l.issued = false;
                            self.lq_issued.remove();
                        }
                    }
                }
                if u.uop.op.is_store() {
                    let sq_idx = (lsq_pos - self.sq_base) as usize;
                    if let Some(s) = self.sq.get_mut(sq_idx) {
                        debug_assert_eq!(s.seq, seq);
                        if s.issued {
                            s.issued = false;
                            self.sq_issued.remove();
                        }
                    }
                }
                rewake.push(seq);
                sat_inc(&mut self.stats.flush.replayed_uops, &mut self.stats.overflow_events);
            }
            // Re-enter the reset µops into the wakeup machinery after
            // the whole wavefront is poisoned (issue runs later this
            // cycle and re-verifies, so evaluation order within the
            // cycle is immaterial).
            for &seq in &rewake {
                self.try_wake(seq);
            }
            if fallback_flush {
                self.push_flush(PendingFlush {
                    at_cycle: self.cycle,
                    first_squashed_seq: replay.seq + 1,
                    kind: FlushKind::ValueMispredict,
                });
            }
        }
        self.replay_due_scratch = due;
        self.replay_poison_scratch = poisoned;
        self.replay_wake_scratch = rewake;
    }

    // ----------------------------------------------------------------
    // flush
    // ----------------------------------------------------------------

    fn apply_pending_flush(&mut self, trace: &Trace) {
        // Next-due watermark: quiet cycles (the overwhelmingly common
        // case) skip the due scan entirely.
        if self.pending_flushes.is_empty() || self.cycle < self.flushes_next_due {
            return;
        }
        let due = self.pending_flushes.iter().filter(|f| f.at_cycle <= self.cycle);
        let Some(flush) = due.min_by_key(|f| f.first_squashed_seq).copied() else {
            // The watermark was conservative (stale-low); tighten it.
            self.flushes_next_due =
                self.pending_flushes.iter().map(|f| f.at_cycle).min().unwrap_or(u64::MAX);
            return;
        };
        // The chosen flush supersedes any pending flush of a younger
        // µop (they will be squashed and, if still relevant, re-arise
        // after re-execution).
        self.pending_flushes
            .retain(|f| f.at_cycle > self.cycle && f.first_squashed_seq < flush.first_squashed_seq);
        self.pending_replays.retain(|r| r.seq < flush.first_squashed_seq);
        self.flushes_next_due =
            self.pending_flushes.iter().map(|f| f.at_cycle).min().unwrap_or(u64::MAX);
        self.replays_next_due =
            self.pending_replays.iter().map(|r| r.at_cycle).min().unwrap_or(u64::MAX);

        let cut = flush.first_squashed_seq;
        match flush.kind {
            FlushKind::ValueMispredict => {
                sat_inc(&mut self.stats.flush.vp_flushes, &mut self.stats.overflow_events);
                if self.cfg.adaptive_silencing {
                    // Dynamic scheme (§3.4.1 future work): clustered
                    // mispredictions widen the window geometrically
                    // (guaranteeing liveness even when the configured
                    // base is shorter than the refetch path); quiet
                    // spells shrink it back, never below the base.
                    if self.cycle.saturating_sub(self.last_vp_flush) < 4 * self.silence_len.max(16)
                    {
                        self.silence_len =
                            (self.silence_len.max(1) * 2).min(self.cfg.silence_cycles.max(16) * 16);
                    } else {
                        self.silence_len = (self.silence_len / 2).max(self.cfg.silence_cycles);
                    }
                    self.last_vp_flush = self.cycle;
                }
                self.silence_until = self.cycle + self.silence_len;
            }
            FlushKind::MemOrder => {
                sat_inc(&mut self.stats.flush.mem_order_flushes, &mut self.stats.overflow_events);
            }
        }

        // Squash younger ROB entries, youngest first.
        let mut squash_cursor: Option<usize> = None;
        let mut squashed_now: u64 = 0;
        while self.rob.back().is_some_and(|e| e.seq >= cut) {
            let entry = self.rob.pop_back().expect("back exists");
            let u = &trace.uops[entry.idx];
            if entry.in_iq {
                self.iq_count -= 1;
            }
            // Squashed µops leave the ready set; their sequence number
            // may be reused after refetch and must not carry a stale
            // candidacy. (Dispatch-FIFO and wake-heap events for them
            // are re-verified on delivery, so they can stay.)
            self.sched.remove_ready(entry.seq);
            if entry.renamed.eliminated == Some(ElimCategory::Spsr) {
                // Kept on the renamer's stats so the end-of-run
                // `stats.rename = renamer.stats()` fold preserves it
                // (bumping `stats.rename` directly was overwritten by
                // that fold and always reported zero).
                sat_inc(&mut self.renamer.stats.spsr_squashed, &mut self.renamer.overflow_events);
            }
            if u.uop.op.is_store() {
                if self.sq.pop_back().is_some_and(|s| s.issued) {
                    self.sq_issued.remove();
                }
                self.storesets.store_completed(u.pc, entry.seq);
            }
            if u.uop.op.is_load() && self.lq.pop_back().is_some_and(|l| l.issued) {
                self.lq_issued.remove();
            }
            self.renamer.rollback(&entry.renamed);
            squashed_now += 1;
            squash_cursor = Some(entry.idx);
        }
        // Squashed fetch-queue µops are all younger than the ROB tail.
        if let Some(front) = self.fetch_queue.front() {
            squash_cursor.get_or_insert(front.idx);
            squashed_now += self.fetch_queue.len() as u64;
        }
        sat_add(&mut self.stats.flush.squashed_uops, squashed_now, &mut self.stats.overflow_events);
        self.tracer.record(EventKind::Flush, self.cycle, cut, 0, squashed_now);
        self.fetch_queue.clear();

        // Roll the trace cursor back to refetch from the squash point.
        // The SkipCursorRollback sabotage deliberately omits this on
        // value-misprediction flushes: the squashed µops are never
        // refetched, the commit stream gains a sequence gap, and the
        // golden-model oracle must report an Order divergence — the
        // broken fixture proving the oracle catches recovery bugs.
        let sabotaged = flush.kind == FlushKind::ValueMispredict
            && self
                .chaos
                .as_ref()
                .is_some_and(|c| c.sabotage() == Some(Sabotage::SkipCursorRollback));
        if let Some(idx) = squash_cursor {
            if !sabotaged {
                self.cursor = idx;
            }
        }

        // Restore speculative front-end state to the youngest surviving
        // checkpoint.
        while self.checkpoints.back().is_some_and(|c| c.seq >= cut) {
            self.checkpoints.pop_back();
        }
        let ckpt = self.checkpoints.back().unwrap_or(&self.floor).clone();
        self.tage.restore_history(ckpt.tage.clone());
        if let (Some(vp), Some(h)) = (self.vtage.as_mut(), ckpt.vtage.clone()) {
            vp.restore_history(h);
        }
        self.ras = ckpt.ras;
        self.itc.restore_path(ckpt.itc_path);

        self.fetch_wait_branch = None;
        self.fetch_resume = self.cycle + self.cfg.redirect_penalty;
        self.current_line = u64::MAX;

        // CPI attribution: while the ROB refills behind this redirect,
        // empty-ROB cycles are this flush's fault, not generic
        // front-end latency.
        self.flush_shadow_class = match flush.kind {
            FlushKind::ValueMispredict => SlotClass::VpMispredictFlush,
            FlushKind::MemOrder => SlotClass::Memory,
        };
        self.flush_shadow_until = self.cycle + self.flush_refill;
    }

    /// Statistics snapshot (valid after [`Core::run`]).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    // ----------------------------------------------------------------
    // chaos / oracle / watchdog surface
    // ----------------------------------------------------------------

    /// Arms the golden-model commit oracle: every committed µop will be
    /// re-executed from `init` (the architectural state *before* the
    /// traced run) and checked in lockstep.
    pub fn enable_oracle(&mut self, init: &ArchSnapshot) {
        self.oracle = Some(CommitOracle::new(init));
    }

    /// The first lockstep divergence the oracle found, if any.
    #[must_use]
    pub fn oracle_divergence(&self) -> Option<&Divergence> {
        self.divergence.as_ref()
    }

    /// Compares the oracle's reconstructed final architectural state
    /// against the functional machine's `golden` state. `None` means
    /// the committed state is architecturally identical (or a lockstep
    /// divergence was already reported — see
    /// [`Core::oracle_divergence`]). Call after [`Core::run`].
    #[must_use]
    pub fn oracle_final_check(&self, golden: &ArchSnapshot) -> Option<Divergence> {
        let oracle = self.oracle.as_ref()?;
        if let Some(d) = self.divergence.clone() {
            return Some(d);
        }
        let seed = self.chaos.as_ref().map(ChaosEngine::seed);
        oracle.final_check(golden).map(|d| d.with_seed(seed))
    }

    /// The deadlock dump, if the watchdog tripped during [`Core::run`].
    #[must_use]
    pub fn watchdog_diagnostic(&self) -> Option<&DeadlockDiagnostic> {
        self.watchdog_diag.as_ref()
    }

    /// The active chaos campaign's replay seed, if one is armed.
    #[must_use]
    pub fn chaos_seed(&self) -> Option<u64> {
        self.chaos.as_ref().map(ChaosEngine::seed)
    }

    /// Whether the misprediction-storm auto-throttle is currently
    /// engaged.
    #[must_use]
    pub fn throttled(&self) -> bool {
        self.throttled
    }

    // ----------------------------------------------------------------
    // observability surface (tvp-obs)
    // ----------------------------------------------------------------

    /// Enables event tracing into a fresh ring holding the last
    /// `capacity` events. Call before [`Core::run`]. Recording is
    /// observation-only: the `obs_neutrality` harness test locks that
    /// enabling it changes neither the commit fingerprint nor any
    /// statistic.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled(capacity);
    }

    /// Whether event tracing is currently enabled.
    #[must_use]
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// The CPI stack accumulated so far (complete after [`Core::run`];
    /// components sum to `cycles × commit_width`).
    pub fn cpi_stack(&self) -> CpiStack {
        self.cpi
    }

    /// Order-sensitive FNV-1a fingerprint of the committed `(seq, pc)`
    /// stream — the determinism-neutrality witness.
    #[must_use]
    pub fn commit_fingerprint(&self) -> u64 {
        self.commit_fp
    }

    /// The traced events, oldest first (empty when tracing is
    /// disabled).
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.snapshot()
    }

    /// Events lost to ring overwrite (the exported window is a suffix
    /// of the run when this is non-zero).
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// Walks every statistics struct — core, CPI, memory hierarchy,
    /// TLBs, branch and value predictors — into one flat
    /// schema-versioned counter [`Registry`] for JSON/Prometheus
    /// export.
    #[must_use]
    pub fn export_registry(&self) -> Registry {
        let mut reg = Registry::new();
        let s = &self.stats;
        reg.counter("core.cycles", s.cycles);
        reg.counter("core.insts_retired", s.insts_retired);
        reg.counter("core.uops_retired", s.uops_retired);
        reg.counter("core.overflow_events", s.overflow_events);
        reg.counter("core.commit_fingerprint", self.commit_fp);
        reg.counter("rename.arch_insts", s.rename.arch_insts);
        reg.counter("rename.uops", s.rename.uops);
        reg.counter("rename.zero_idiom", s.rename.zero_idiom);
        reg.counter("rename.one_idiom", s.rename.one_idiom);
        reg.counter("rename.move_elim", s.rename.move_elim);
        reg.counter("rename.non_me_move", s.rename.non_me_move);
        reg.counter("rename.nine_bit_idiom", s.rename.nine_bit_idiom);
        reg.counter("rename.spsr", s.rename.spsr);
        reg.counter("rename.spsr_squashed", s.rename.spsr_squashed);
        reg.counter("vp.eligible", s.vp.eligible);
        reg.counter("vp.used", s.vp.used);
        reg.counter("vp.correct_used", s.vp.correct_used);
        reg.counter("vp.incorrect_used", s.vp.incorrect_used);
        reg.counter("vp.silenced_lookups", s.vp.silenced_lookups);
        reg.counter("activity.int_prf_reads", s.activity.int_prf_reads);
        reg.counter("activity.int_prf_writes", s.activity.int_prf_writes);
        reg.counter("activity.iq_dispatched", s.activity.iq_dispatched);
        reg.counter("activity.iq_issued", s.activity.iq_issued);
        reg.counter("flush.branch_mispredicts", s.flush.branch_mispredicts);
        reg.counter("flush.vp_flushes", s.flush.vp_flushes);
        reg.counter("flush.mem_order_flushes", s.flush.mem_order_flushes);
        reg.counter("flush.squashed_uops", s.flush.squashed_uops);
        reg.counter("flush.vp_replays", s.flush.vp_replays);
        reg.counter("flush.replayed_uops", s.flush.replayed_uops);
        reg.counter("chaos.total_faults", s.chaos.total());
        reg.counter("degrade.throttle_engagements", s.degrade.throttle_engagements);
        reg.counter("degrade.throttled_cycles", s.degrade.throttled_cycles);
        reg.counter("degrade.killswitch_suppressed", s.degrade.killswitch_suppressed);
        reg.counter("degrade.throttle_suppressed", s.degrade.throttle_suppressed);
        self.cpi.fill_registry(&mut reg);
        reg.counter("trace.events_dropped", self.tracer.dropped());
        self.mem.fill_registry(&mut reg);
        let tage = self.tage.stats();
        reg.counter("tage.predictions", tage.predictions);
        reg.counter("tage.mispredictions", tage.mispredictions);
        reg.counter("tage.overflow_events", tage.overflow_events);
        let btb = self.btb.stats();
        reg.counter("btb.hits", btb.hits);
        reg.counter("btb.misses", btb.misses);
        reg.counter("btb.overflow_events", btb.overflow_events);
        if let Some(vp) = self.vtage.as_ref() {
            let v = vp.stats();
            reg.counter("vtage.lookups", v.lookups);
            reg.counter("vtage.hits", v.hits);
            reg.counter("vtage.correct", v.correct);
            reg.counter("vtage.incorrect", v.incorrect);
            reg.counter("vtage.overflow_events", v.overflow_events);
        }
        reg.gauge("core.ipc", s.ipc());
        reg.gauge("core.expansion_ratio", s.expansion_ratio());
        reg.gauge("vp.coverage", s.vp.coverage());
        reg.gauge("vp.accuracy", s.vp.accuracy());
        reg.gauge("cpi.base_fraction", self.cpi.fraction(self.cpi.base));
        reg
    }
}

// --------------------------------------------------------------------
// verification (the `verif` feature)
// --------------------------------------------------------------------

#[cfg(feature = "verif")]
impl Core {
    fn snap_name(name: PhysName) -> tvp_verif::SnapName {
        match name {
            PhysName::Reg(p) => tvp_verif::SnapName::Reg(p),
            PhysName::Inline(v) => tvp_verif::SnapName::Inline(v),
            PhysName::KnownFlags(f) => tvp_verif::SnapName::KnownFlags(f),
        }
    }

    /// Class of a dense architectural index (see [`tvp_isa::reg::Reg::dense_index`]):
    /// `32..64` are the FP registers, everything else (GPRs and `NZCV`)
    /// lives in the integer file.
    fn snap_class(dense: usize) -> tvp_verif::RegClass {
        if (32..64).contains(&dense) {
            tvp_verif::RegClass::Fp
        } else {
            tvp_verif::RegClass::Int
        }
    }

    fn class_snapshot(&self, class: crate::rename::RegClass) -> tvp_verif::RegClassSnapshot {
        let file = self.renamer.file(class);
        tvp_verif::RegClassSnapshot {
            class: match class {
                crate::rename::RegClass::Int => tvp_verif::RegClass::Int,
                crate::rename::RegClass::Fp => tvp_verif::RegClass::Fp,
            },
            total: file.total(),
            hardwired: file.hardwired(),
            free: file.free_regs(),
            ref_counts: file.ref_counts(),
        }
    }

    /// Assembles the plain-data mirror of the renaming and queue state
    /// that the [`tvp_verif`] auditors inspect. Taken between cycles,
    /// when no µop is mid-rename.
    #[must_use]
    pub fn snapshot(&self) -> tvp_verif::PipelineSnapshot {
        use tvp_isa::reg::NUM_DENSE_REGS;
        let map_entry = |dense: usize, name: PhysName| tvp_verif::MapEntry {
            dense: dense as u16,
            class: Self::snap_class(dense),
            name: Self::snap_name(name),
        };
        let crat = (0..NUM_DENSE_REGS).map(|d| map_entry(d, self.renamer.crat_entry(d))).collect(); // audited(no-alloc-in-hot-path): verif snapshot, off the per-cycle loop
        let rat = (0..NUM_DENSE_REGS).map(|d| map_entry(d, self.renamer.rat_entry(d))).collect(); // audited(no-alloc-in-hot-path): verif snapshot, off the per-cycle loop
        let rob = self
            .rob
            .iter()
            .map(|e| tvp_verif::RobSnapshot {
                seq: e.seq,
                in_iq: e.in_iq,
                issued: e.issued,
                // Ground-truth issue predicate, computed by polling
                // operand `ready_at` — deliberately independent of the
                // event-driven scheduler it cross-checks. An entry
                // renamed *this* cycle is excluded: rename runs after
                // issue, so no scheduler (event-driven or polling)
                // could have considered it yet.
                issuable: e.in_iq
                    && !e.issued
                    && e.dispatch_ready <= self.cycle
                    && e.dispatch_ready < self.cycle + self.cfg.rename_to_dispatch.max(1)
                    && self.first_unready_dep(&e.renamed).is_none(),
                new_names: e.new_names.iter().map(|&(d, n)| map_entry(d, n)).collect(), // audited(no-alloc-in-hot-path): verif snapshot, off the per-cycle loop
            })
            .collect(); // audited(no-alloc-in-hot-path): verif snapshot, off the per-cycle loop
        tvp_verif::PipelineSnapshot {
            cycle: self.cycle,
            int: self.class_snapshot(crate::rename::RegClass::Int),
            fp: self.class_snapshot(crate::rename::RegClass::Fp),
            crat,
            rat,
            rob,
            iq_count: self.iq_count,
            ready_seqs: self.sched.ready_seqs(),
            lq_seqs: self.lq.iter().map(|l| l.seq).collect(), // audited(no-alloc-in-hot-path): verif snapshot, off the per-cycle loop
            sq_seqs: self.sq.iter().map(|s| s.seq).collect(), // audited(no-alloc-in-hot-path): verif snapshot, off the per-cycle loop
            limits: tvp_verif::QueueLimits {
                rob: self.cfg.rob_size,
                iq: self.cfg.iq_size,
                lq: self.cfg.lq_size,
                sq: self.cfg.sq_size,
            },
            committed_seq: self.last_committed_seq,
            uops_retired: self.stats.uops_retired,
        }
    }

    fn maybe_audit(&mut self) {
        let every = self.cfg.audit_every;
        if every != 0 && self.cycle.is_multiple_of(every) {
            self.run_audit();
        }
    }

    fn run_audit(&mut self) {
        let snap = self.snapshot();
        tvp_verif::run_suite(&mut self.auditors, &snap, &mut self.audit_report);
    }

    /// End-of-run audit: one last invariant pass over the drained
    /// pipeline, plus the storage-budget assertion — the single place
    /// every [`tvp_verif::StorageBudget`] report is checked against the
    /// paper's Table 2 ceilings.
    fn final_audit(&mut self) {
        self.run_audit();
        let specs = tvp_verif::budget::table2_budgets();
        for v in tvp_verif::budget::check_budgets(&specs, &self.storage_report()) {
            self.audit_report.violations.push((self.cycle, "storage-budget", v));
        }
    }

    /// Modeled hardware state, in bits, per structure — every table the
    /// core instantiates, named as in the Table 2 budget list.
    #[must_use]
    pub fn storage_report(&self) -> Vec<(String, u64)> {
        use tvp_verif::StorageBudget;
        // audited(no-alloc-in-hot-path): storage report, runs once per config
        let mut out = vec![
            (self.tage.storage_name().to_owned(), self.tage.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.btb.storage_name().to_owned(), self.btb.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.ras.storage_name().to_owned(), self.ras.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
            (self.itc.storage_name().to_owned(), self.itc.storage_bits()), // audited(no-alloc-in-hot-path): storage report, runs once per config
        ];
        if let Some(vp) = self.vtage.as_ref() {
            out.push((vp.storage_name().to_owned(), vp.storage_bits())); // audited(no-alloc-in-hot-path): storage report, runs once per config
        }
        out.extend(self.mem.storage_report());
        out
    }

    /// Everything the auditors have found so far (complete after
    /// [`Core::run`]).
    #[must_use]
    pub fn audit_report(&self) -> &tvp_verif::AuditReport {
        &self.audit_report
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cycle", &self.cycle)
            .field("vp", &self.cfg.vp)
            .field("spsr", &self.cfg.spsr)
            .finish_non_exhaustive()
    }
}

/// Convenience: simulate a trace under a configuration.
///
/// # Panics
///
/// Panics with the full [`DeadlockDiagnostic`] dump if the pipeline
/// stops making commit progress (a simulator bug); drive [`Core`]
/// directly to handle the diagnostic programmatically.
pub fn simulate(cfg: CoreConfig, trace: &Trace) -> SimStats {
    let mut core = Core::new(cfg);
    let stats = core.run(trace);
    if let Some(diag) = core.watchdog_diagnostic() {
        // audited(no-panic-in-hot-path): deliberate fail-loud path — a tripped watchdog is a simulator bug
        panic!("pipeline deadlock:\n{diag}");
    }
    stats
}

/// Convenience: simulate a named VP mode (paper Table 2 machine).
pub fn simulate_vp(vp: VpMode, spsr: bool, trace: &Trace) -> SimStats {
    let mut cfg = CoreConfig::with_vp(vp);
    cfg.spsr = spsr;
    simulate(cfg, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_isa::flags::Cond;
    use tvp_isa::inst::build::*;
    use tvp_isa::inst::AddrMode;
    use tvp_isa::reg::x;
    use tvp_workloads::program::Asm;
    use tvp_workloads::Machine;

    fn counted_loop_trace(n: i64) -> Trace {
        let mut a = Asm::new();
        a.i(movz(x(0), n));
        a.label("loop");
        a.i(add(x(1), x(1), x(0)));
        a.i(subs(x(0), x(0), 1i64));
        a.b_cond(Cond::Ne, "loop");
        Machine::new(a.assemble().unwrap()).run(100_000)
    }

    #[test]
    fn baseline_retires_every_instruction() {
        let trace = counted_loop_trace(500);
        let stats = simulate(CoreConfig::table2(), &trace);
        assert_eq!(stats.insts_retired, trace.arch_insts);
        assert_eq!(stats.uops_retired, trace.uops.len() as u64);
        assert!(stats.cycles > 0);
        let ipc = stats.ipc();
        assert!(ipc > 0.5 && ipc < 8.0, "loop IPC = {ipc}");
    }

    #[cfg(feature = "verif")]
    #[test]
    fn auditors_stay_clean_on_a_small_loop() {
        // Audit every cycle, across every VP/SpSR flavour, so rename,
        // squash and commit all hit the invariant checks repeatedly.
        let trace = counted_loop_trace(400);
        for vp in [VpMode::Off, VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
            for spsr in [false, true] {
                let mut cfg = CoreConfig::with_vp(vp);
                cfg.spsr = spsr;
                cfg.audit_every = 1;
                let mut core = Core::new(cfg);
                let _stats = core.run(&trace);
                let report = core.audit_report();
                assert!(report.is_clean(), "vp={vp:?} spsr={spsr}:\n{}", report.render());
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = counted_loop_trace(300);
        let a = simulate(CoreConfig::table2(), &trace);
        let b = simulate(CoreConfig::table2(), &trace);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.activity.int_prf_reads, b.activity.int_prf_reads);
    }

    #[test]
    fn loop_branches_become_predictable() {
        let trace = counted_loop_trace(2_000);
        let stats = simulate(CoreConfig::table2(), &trace);
        // One final not-taken mispredict plus warmup at most.
        let rate = stats.flush.branch_mispredicts as f64 / trace.arch_insts as f64;
        assert!(rate < 0.02, "mispredict rate = {rate}");
    }

    #[test]
    fn dependent_alu_chain_limits_ipc() {
        // A pure serial chain cannot exceed 1 result per cycle.
        let mut a = Asm::new();
        a.i(movz(x(0), 4_000));
        a.label("loop");
        a.i(add(x(1), x(1), 1i64));
        a.i(add(x(1), x(1), 1i64));
        a.i(add(x(1), x(1), 1i64));
        a.i(add(x(1), x(1), 1i64));
        a.i(subs(x(0), x(0), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let trace = Machine::new(a.assemble().unwrap()).run(50_000);
        let stats = simulate(CoreConfig::table2(), &trace);
        // 4 serial adds per iteration → at least ~4 cycles/iteration.
        let cycles_per_iter = stats.cycles as f64 / 4_000.0;
        assert!(cycles_per_iter >= 3.5, "cycles/iter = {cycles_per_iter}");
        assert!(cycles_per_iter <= 8.0, "cycles/iter = {cycles_per_iter}");
    }

    #[test]
    fn independent_alu_ops_reach_high_ipc() {
        let mut a = Asm::new();
        a.i(movz(x(0), 4_000));
        a.label("loop");
        a.i(add(x(1), x(10), 1i64));
        a.i(add(x(2), x(10), 2i64));
        a.i(add(x(3), x(10), 3i64));
        a.i(add(x(4), x(10), 4i64));
        a.i(add(x(5), x(10), 5i64));
        a.i(subs(x(0), x(0), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let trace = Machine::new(a.assemble().unwrap()).run(50_000);
        let stats = simulate(CoreConfig::table2(), &trace);
        assert!(stats.ipc() > 3.0, "independent IPC = {}", stats.ipc());
    }

    #[test]
    fn gvp_accelerates_stable_load_chain() {
        // A serial chain through loads of never-changing pointers: the
        // pointer_chase mechanism in miniature.
        let w = tvp_workloads::suite::by_name("pointer_chase").unwrap();
        let trace = w.trace(60_000);
        let base = simulate_vp(VpMode::Off, false, &trace);
        let gvp = simulate_vp(VpMode::Gvp, false, &trace);
        let speedup = gvp.speedup_over(&base);
        assert!(speedup > 1.10, "GVP speedup on pointer_chase = {speedup}");
        assert!(gvp.vp.coverage() > 0.05, "coverage = {}", gvp.vp.coverage());
        assert!(gvp.vp.accuracy() > 0.99, "accuracy = {}", gvp.vp.accuracy());
        // MVP cannot capture 64-bit pointers: its gain must be a
        // small fraction of GVP's.
        let mvp = simulate_vp(VpMode::Mvp, false, &trace);
        let mvp_gain = mvp.speedup_over(&base) - 1.0;
        let gvp_gain = speedup - 1.0;
        assert!(mvp_gain < gvp_gain * 0.3, "MVP gain {mvp_gain:.3} vs GVP gain {gvp_gain:.3}");
    }

    #[test]
    fn spsr_eliminates_instructions_without_breaking_retirement() {
        let w = tvp_workloads::suite::by_name("mc_playout").unwrap();
        let trace = w.trace(40_000);
        let plain = simulate_vp(VpMode::Mvp, false, &trace);
        let spsr = simulate_vp(VpMode::Mvp, true, &trace);
        assert_eq!(spsr.insts_retired, trace.arch_insts);
        assert!(spsr.rename.spsr > 0, "no SpSR reductions found");
        assert!(
            spsr.activity.iq_dispatched < plain.activity.iq_dispatched,
            "SpSR must reduce IQ dispatches: {} vs {}",
            spsr.activity.iq_dispatched,
            plain.activity.iq_dispatched
        );
    }

    #[test]
    fn value_mispredictions_flush_and_stay_correct() {
        // A load whose value changes periodically: the predictor gains
        // confidence, then mispredicts, forcing flushes — retirement
        // must stay exact and accuracy high thanks to FPC.
        let mut a = Asm::new();
        a.i(movz(x(0), 0x4000));
        a.i(movz(x(9), 60_000));
        a.label("loop");
        a.i(ldr(x(1), AddrMode::BaseDisp { base: x(0), disp: 0 }));
        a.i(add(x(2), x(2), x(1)));
        a.i(and(x(3), x(9), 0xFFFi64));
        a.i(str(x(3), AddrMode::BaseDisp { base: x(0), disp: 8 }));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        m.write_mem(0x4000, 8, 7);
        let trace = m.run(30_000);
        let stats = simulate_vp(VpMode::Gvp, false, &trace);
        assert_eq!(stats.insts_retired, trace.arch_insts);
        assert!(stats.vp.used > 0);
    }

    #[test]
    fn store_load_forwarding_and_ordering() {
        // Store followed by a dependent load to the same address in a
        // tight loop: must retire correctly (forwarding or violation
        // recovery both acceptable timings).
        let mut a = Asm::new();
        a.i(movz(x(0), 0x8000));
        a.i(movz(x(9), 3_000));
        a.label("loop");
        a.i(add(x(1), x(1), 1i64));
        a.i(str(x(1), AddrMode::BaseDisp { base: x(0), disp: 0 }));
        a.i(ldr(x(2), AddrMode::BaseDisp { base: x(0), disp: 0 }));
        a.i(add(x(3), x(3), x(2)));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let trace = Machine::new(a.assemble().unwrap()).run(30_000);
        let stats = simulate(CoreConfig::table2(), &trace);
        assert_eq!(stats.insts_retired, trace.arch_insts);
    }

    #[test]
    fn forwarding_with_multiple_older_overlapping_stores() {
        // Two older stores cover the loaded range (one exactly, one
        // overlapping): the existence scan over older issued stores
        // must forward, and retirement must stay exact. This is the
        // shape where a youngest-first `rev().find()` and an
        // oldest-first `any()` see different *witnesses* but must
        // agree on the answer.
        let mut a = Asm::new();
        a.i(movz(x(0), 0x8000));
        a.i(movz(x(9), 2_000));
        a.label("loop");
        a.i(add(x(1), x(1), 1i64));
        a.i(str(x(1), AddrMode::BaseDisp { base: x(0), disp: 0 }));
        a.i(str(x(1), AddrMode::BaseDisp { base: x(0), disp: 4 }));
        a.i(ldr(x(2), AddrMode::BaseDisp { base: x(0), disp: 0 }));
        a.i(add(x(3), x(3), x(2)));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let trace = Machine::new(a.assemble().unwrap()).run(30_000);
        let stats = simulate(CoreConfig::table2(), &trace);
        assert_eq!(stats.insts_retired, trace.arch_insts);
        let again = simulate(CoreConfig::table2(), &trace);
        assert_eq!(stats.cycles, again.cycles);
    }

    #[test]
    fn overlap_edges() {
        // Adjacent ranges share no byte.
        assert!(!overlap(0x100, 8, 0x108, 8));
        assert!(!overlap(0x108, 8, 0x100, 8));
        // One shared byte.
        assert!(overlap(0x100, 9, 0x108, 8));
        // Containment and identity.
        assert!(overlap(0x100, 8, 0x102, 2));
        assert!(overlap(0x100, 8, 0x100, 8));
        // Zero-size ranges at the edge of (or outside) the other
        // range never overlap; strictly *inside*, the half-open
        // formula conservatively reports contact. No µop issues a
        // zero-size access, so only the conservative direction could
        // ever matter.
        assert!(!overlap(0x100, 0, 0x100, 8));
        assert!(!overlap(0x108, 0, 0x100, 8));
        assert!(!overlap(0x100, 0, 0x100, 0));
        assert!(overlap(0x102, 8, 0x104, 0));
        // Top of the address space: the end saturates at `u64::MAX`
        // instead of wrapping to 0 (wrap would make a range touching
        // the top compare disjoint with everything, or panic in
        // debug). Saturation consistently treats the exclusive end as
        // capped, so byte MAX itself is never covered by a saturated
        // range — the same on both operands.
        assert!(overlap(u64::MAX - 3, 8, u64::MAX - 1, 8));
        assert!(!overlap(u64::MAX, 1, u64::MAX - 1, 8), "end is capped below byte MAX");
        assert!(!overlap(u64::MAX, 1, u64::MAX - 8, 8));
    }

    #[test]
    fn issued_window_is_a_conservative_interval() {
        let mut w = IssuedWindow::new();
        assert!(!w.may_overlap(0, u8::MAX), "empty window overlaps nothing");
        w.add(0x100, 8);
        w.add(0x200, 8);
        assert!(w.may_overlap(0x104, 4));
        assert!(w.may_overlap(0x1F0, 0x20), "gap between members still hits the interval");
        assert!(!w.may_overlap(0x0F8, 8), "below lo");
        assert!(!w.may_overlap(0x208, 8), "at hi (exclusive end)");
        // The interval never shrinks while occupied...
        w.remove();
        assert!(w.may_overlap(0x104, 4) && w.may_overlap(0x204, 4));
        // ...and resets once the last member leaves.
        w.remove();
        assert!(!w.may_overlap(0x104, 4));
        // Saturating end at the top of the address space: the window
        // mirrors `overlap`'s capped exclusive end, so it stays a
        // superset of the true answers right up to the boundary.
        w.add(u64::MAX - 1, 8);
        assert!(w.may_overlap(u64::MAX - 1, 1));
        assert!(!w.may_overlap(u64::MAX, 1), "capped end excludes byte MAX, like overlap()");
    }

    #[test]
    fn idiom_elimination_reduces_dispatch() {
        // A loop full of eliminable idioms barely touches the IQ.
        let mut a = Asm::new();
        a.i(movz(x(9), 4_000));
        a.label("loop");
        a.i(movz(x(1), 0)); // zero idiom
        a.i(movz(x(2), 1)); // one idiom
        a.i(mov(x(3), x(4))); // move elimination
        a.i(eor(x(5), x(6), x(6))); // zero idiom
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let trace = Machine::new(a.assemble().unwrap()).run(30_000);
        let stats = simulate(CoreConfig::table2(), &trace);
        let r = stats.rename;
        assert!(r.zero_idiom > 7_000, "zero idioms = {}", r.zero_idiom);
        assert!(r.one_idiom > 3_000);
        assert!(r.move_elim > 3_000);
        // Eliminated µops never dispatch.
        assert!(stats.activity.iq_dispatched < stats.uops_retired);
    }

    #[test]
    fn all_suite_kernels_complete_under_every_config() {
        for name in ["string_match", "sparse_graph", "stream_triad"] {
            let w = tvp_workloads::suite::by_name(name).unwrap();
            let trace = w.trace(8_000);
            for vp in [VpMode::Off, VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
                for spsr in [false, true] {
                    let stats = simulate_vp(vp, spsr, &trace);
                    assert_eq!(
                        stats.insts_retired, trace.arch_insts,
                        "{name} under {vp:?}/spsr={spsr}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use tvp_chaos::{ChaosConfig, DivergenceKind};

    /// Runs a suite workload functionally, capturing the architectural
    /// state before and after: `(init, trace, golden)`.
    fn golden_run(name: &str, n: u64) -> (ArchSnapshot, Trace, ArchSnapshot) {
        let w = tvp_workloads::suite::by_name(name).expect("workload exists");
        let mut m = w.machine();
        let init = m.arch_snapshot();
        let trace = m.run(n);
        let golden = m.arch_snapshot();
        (init, trace, golden)
    }

    #[test]
    fn chaos_campaign_commits_identical_architectural_state() {
        // Full fault campaign (≥2% forced VP mispredicts, predictor
        // table corruption, branch inversion, cache delays, prefetch
        // drops) against the golden-model oracle: timing is perturbed
        // but committed state must be architecturally identical.
        let (init, trace, golden) = golden_run("pointer_chase", 12_000);
        let cfg = CoreConfig::with_vp(VpMode::Gvp).with_chaos(ChaosConfig::campaign(0xC0FFEE));
        let mut core = Core::new(cfg);
        core.enable_oracle(&init);
        let stats = core.run(&trace);
        assert!(core.watchdog_diagnostic().is_none());
        assert_eq!(stats.insts_retired, trace.arch_insts);
        assert!(
            stats.chaos.vp_forced_mispredicts > 0,
            "campaign must actually force mispredictions: {:?}",
            stats.chaos
        );
        assert!(stats.chaos.total() > stats.chaos.vp_forced_mispredicts, "other sites fired too");
        assert_eq!(core.oracle_divergence(), None);
        assert_eq!(core.oracle_final_check(&golden), None);
    }

    #[test]
    fn sabotaged_recovery_is_caught_with_replayable_seed() {
        // Same campaign, but value-misprediction squashes deliberately
        // skip the trace-cursor rollback: squashed µops are never
        // refetched and the oracle must report the sequence gap, with
        // the campaign seed attached for replay.
        let seed = 0xBAD_5EED;
        let (init, trace, _) = golden_run("pointer_chase", 12_000);
        let cfg =
            CoreConfig::with_vp(VpMode::Gvp).with_chaos(ChaosConfig::sabotaged_campaign(seed));
        let mut core = Core::new(cfg);
        core.enable_oracle(&init);
        let _stats = core.run(&trace);
        let d = core.oracle_divergence().expect("sabotage must diverge");
        assert!(
            matches!(d.kind, DivergenceKind::Order { .. }),
            "skipped refetch shows up as an order gap: {d}"
        );
        assert_eq!(d.chaos_seed, Some(seed), "divergence must carry the replaying seed");
        assert!(d.to_string().contains("replay with chaos seed"), "{d}");
    }

    #[test]
    fn chaos_campaigns_are_deterministic() {
        let (init, trace, _) = golden_run("mc_playout", 8_000);
        let run = || {
            let cfg = CoreConfig::with_vp(VpMode::Tvp).with_chaos(ChaosConfig::campaign(7));
            let mut core = Core::new(cfg);
            core.enable_oracle(&init);
            let stats = core.run(&trace);
            (stats.cycles, stats.chaos, stats.flush.vp_flushes)
        };
        assert_eq!(run(), run(), "same seed must replay the same campaign exactly");
    }

    #[test]
    fn watchdog_trips_with_structured_diagnostic() {
        // A watchdog threshold shorter than the cold I-cache miss at
        // cycle 0 must trip immediately and describe the stall instead
        // of hanging.
        let (_, trace, _) = golden_run("stream_triad", 2_000);
        let mut cfg = CoreConfig::table2();
        cfg.watchdog_cycles = 20;
        let mut core = Core::new(cfg);
        let _stats = core.run(&trace);
        let diag = core.watchdog_diagnostic().expect("cold-start stall exceeds 20 cycles");
        assert!(diag.stalled_cycles >= 20);
        let text = diag.to_string();
        assert!(text.contains("no commit progress"), "{text}");
    }

    #[test]
    fn vp_kill_switch_suppresses_all_predictions() {
        let (_, trace, _) = golden_run("pointer_chase", 10_000);
        let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
        cfg.vp_kill_switch = true;
        let stats = simulate(cfg, &trace);
        assert_eq!(stats.insts_retired, trace.arch_insts);
        assert_eq!(stats.vp.used, 0, "kill-switch must stop prediction use");
        assert!(
            stats.degrade.killswitch_suppressed > 0,
            "suppressions must be visible in the stats"
        );
    }

    #[test]
    fn auto_throttle_engages_under_misprediction_storm() {
        // Every used prediction forced wrong, with silencing disabled:
        // a worst-case misprediction storm. The auto-throttle must
        // engage (disabling VP use) and the run must stay correct.
        let (init, trace, golden) = golden_run("pointer_chase", 12_000);
        let mut chaos = ChaosConfig::quiet(99);
        chaos.vp_force_mispredict_permille = 1000;
        let mut cfg = CoreConfig::with_vp(VpMode::Gvp).with_spsr().with_chaos(chaos);
        cfg.silence_cycles = 0;
        cfg.auto_throttle = true;
        let mut core = Core::new(cfg);
        core.enable_oracle(&init);
        let stats = core.run(&trace);
        assert!(core.watchdog_diagnostic().is_none());
        assert!(
            stats.degrade.throttle_engagements > 0,
            "storm must engage the throttle: {:?}",
            stats.degrade
        );
        assert!(stats.degrade.throttled_cycles > 0);
        assert!(stats.degrade.throttle_suppressed > 0, "suppressed predictions while throttled");
        assert_eq!(core.oracle_final_check(&golden), None, "degraded, not broken");
    }

    #[test]
    fn spsr_kill_switch_stops_reductions() {
        let (_, trace, _) = golden_run("mc_playout", 10_000);
        let with = simulate_vp(VpMode::Mvp, true, &trace);
        let mut cfg = CoreConfig::with_vp(VpMode::Mvp).with_spsr();
        cfg.spsr_kill_switch = true;
        let without = simulate(cfg, &trace);
        assert!(with.rename.spsr > 0, "control: SpSR active without the switch");
        assert_eq!(without.rename.spsr, 0, "kill-switch must stop SpSR");
        assert_eq!(without.insts_retired, trace.arch_insts);
    }
}

#[cfg(test)]
mod adaptive_silencing_tests {
    use super::*;
    use tvp_isa::flags::Cond;
    use tvp_isa::inst::build::*;
    use tvp_isa::inst::AddrMode;
    use tvp_isa::reg::x;
    use tvp_workloads::program::Asm;
    use tvp_workloads::Machine;

    /// A load that flips value every `period` iterations: clustered
    /// mispredictions once confidence builds.
    fn flipping_trace() -> Trace {
        let mut a = Asm::new();
        a.i(movz(x(9), 30_000));
        a.label("loop");
        a.i(and(x(1), x(9), 0x1FFi64));
        a.i(cmp(x(1), 256i64));
        a.i(cset(x(2), Cond::Cc));
        a.i(str_sized(x(2), AddrMode::BaseDisp { base: x(20), disp: 0 }, 1));
        a.i(ldr_sized(x(3), AddrMode::BaseDisp { base: x(20), disp: 0 }, 1, false));
        a.i(add(x(4), x(4), x(3)));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        m.set_reg(x(20), 0x50_0000);
        m.run(250_000)
    }

    #[test]
    fn adaptive_silencing_matches_fixed_outside_storms() {
        // Isolated mispredictions (one per value flip) gain nothing
        // from backoff, but must not lose anything either.
        let trace = flipping_trace();
        let run = |adaptive: bool| {
            let mut cfg = CoreConfig::with_vp(VpMode::Mvp);
            cfg.silence_cycles = 50;
            cfg.adaptive_silencing = adaptive;
            simulate(cfg, &trace)
        };
        let fixed = run(false);
        let adaptive = run(true);
        assert_eq!(fixed.insts_retired, adaptive.insts_retired);
        assert!(
            adaptive.flush.vp_flushes <= fixed.flush.vp_flushes,
            "backoff must never add flushes: {} vs {}",
            adaptive.flush.vp_flushes,
            fixed.flush.vp_flushes
        );
    }

    #[test]
    fn adaptive_silencing_escapes_a_livelock_prone_window() {
        // A silencing window shorter than the flush-to-rename path
        // would re-use the same stale confident prediction forever:
        // the paper's livelock (§3.4.1). The geometric backoff
        // escapes it.
        let trace = flipping_trace();
        let mut cfg = CoreConfig::with_vp(VpMode::Mvp);
        cfg.silence_cycles = 2; // shorter than redirect + decode depth
        cfg.adaptive_silencing = true;
        let s = simulate(cfg, &trace);
        assert_eq!(s.insts_retired, trace.arch_insts);
        assert!(s.flush.vp_flushes > 0);
    }

    #[test]
    fn adaptive_silencing_is_neutral_when_values_behave() {
        let w = tvp_workloads::suite::by_name("mc_playout").unwrap();
        let trace = w.trace(25_000);
        let run = |adaptive: bool| {
            let mut cfg = CoreConfig::with_vp(VpMode::Mvp);
            cfg.adaptive_silencing = adaptive;
            simulate(cfg, &trace)
        };
        let fixed = run(false);
        let adaptive = run(true);
        let delta = (adaptive.cycles as f64 / fixed.cycles as f64 - 1.0).abs();
        assert!(delta < 0.02, "well-behaved workloads should be unaffected: {delta}");
    }
}

#[cfg(test)]
mod control_flow_tests {
    use super::*;
    use tvp_isa::flags::Cond;
    use tvp_isa::inst::build::*;
    use tvp_isa::inst::AddrMode;
    use tvp_isa::reg::x;
    use tvp_workloads::program::Asm;
    use tvp_workloads::Machine;

    #[test]
    fn calls_and_returns_flow_through_the_ras() {
        let mut a = Asm::new();
        a.i(movz(x(9), 3_000));
        a.label("loop");
        a.bl("helper");
        a.bl("helper");
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        a.b("end");
        a.label("helper");
        a.i(add(x(1), x(1), 1i64));
        a.ret();
        a.label("end");
        a.i(nop());
        let trace = Machine::new(a.assemble().unwrap()).run(50_000);
        let s = simulate(CoreConfig::table2(), &trace);
        assert_eq!(s.insts_retired, trace.arch_insts);
        // Returns are RAS-predicted: misses should be a warmup handful.
        let rate = s.flush.branch_mispredicts as f64 / trace.arch_insts as f64;
        assert!(rate < 0.02, "call/ret mispredict rate {rate}");
    }

    #[test]
    fn monomorphic_indirect_branches_are_learned() {
        // A jump through a register that always targets the same
        // label: the indirect target cache should capture it.
        let mut a = Asm::new();
        a.i(movz(x(9), 3_000));
        a.label("loop");
        a.i(movz(x(5), 0x1_0000 + 6 * 4)); // address of "body"
        a.br(x(5));
        a.i(nop()); // skipped
        a.label("body");
        a.i(add(x(1), x(1), 1i64));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let trace = Machine::new(a.assemble().unwrap()).run(50_000);
        let s = simulate(CoreConfig::table2(), &trace);
        assert_eq!(s.insts_retired, trace.arch_insts);
        let rate = s.flush.branch_mispredicts as f64 / trace.arch_insts as f64;
        assert!(rate < 0.05, "indirect mispredict rate {rate}");
    }

    #[test]
    fn store_sets_learn_to_avoid_repeat_violations() {
        // A tight store→load same-address pattern: the first ordering
        // violation trains the SSIT, after which the load waits.
        let mut a = Asm::new();
        a.i(movz(x(9), 4_000));
        a.label("loop");
        a.i(add(x(1), x(1), 3i64));
        a.i(mul(x(2), x(1), x(1))); // delay the store's data
        a.i(str(x(2), AddrMode::BaseDisp { base: x(20), disp: 0 }));
        a.i(ldr(x(3), AddrMode::BaseDisp { base: x(20), disp: 0 }));
        a.i(add(x(4), x(4), x(3)));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        m.set_reg(x(20), 0x7000);
        let trace = m.run(50_000);
        let s = simulate(CoreConfig::table2(), &trace);
        assert_eq!(s.insts_retired, trace.arch_insts);
        // Far fewer violations than iterations → the predictor learned.
        assert!(
            s.flush.mem_order_flushes < 4_000 / 10,
            "mem-order flushes = {} (no learning?)",
            s.flush.mem_order_flushes
        );
    }

    #[test]
    fn gvp_flush_excludes_the_predicted_uop_itself() {
        // GVP has a register to repair, so the mispredicted µop is not
        // refetched — only younger µops squash. Check via squashed
        // counts against MVP on the same value-hostile trace.
        let mut a = Asm::new();
        a.i(movz(x(9), 20_000));
        a.label("loop");
        a.i(and(x(1), x(9), 0x7FFi64));
        a.i(cmp(x(1), 1024i64));
        a.i(cset(x(2), Cond::Cc));
        a.i(str_sized(x(2), AddrMode::BaseDisp { base: x(20), disp: 0 }, 1));
        a.i(ldr_sized(x(3), AddrMode::BaseDisp { base: x(20), disp: 0 }, 1, false));
        a.i(add(x(4), x(4), x(3)));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        m.set_reg(x(20), 0x7100);
        let trace = m.run(200_000);
        let mvp = simulate_vp(VpMode::Mvp, false, &trace);
        let gvp = simulate_vp(VpMode::Gvp, false, &trace);
        assert_eq!(mvp.insts_retired, trace.arch_insts);
        assert_eq!(gvp.insts_retired, trace.arch_insts);
        if mvp.flush.vp_flushes > 0 && gvp.flush.vp_flushes > 0 {
            let mvp_per = mvp.flush.squashed_uops as f64 / mvp.flush.vp_flushes as f64;
            let gvp_per = gvp.flush.squashed_uops as f64 / gvp.flush.vp_flushes as f64;
            assert!(
                gvp_per <= mvp_per + 1.0,
                "GVP flushes should not squash more per event: {gvp_per} vs {mvp_per}"
            );
        }
    }

    #[test]
    fn fp_divides_serialize_on_the_unpipelined_unit() {
        let mut a = Asm::new();
        use tvp_isa::reg::v;
        a.i(movz(x(9), 2_000));
        a.label("loop");
        // Two independent FP divides per iteration compete for the
        // single non-pipelined divider (12 cycles each).
        a.i(fdiv(v(1), v(2), v(3)));
        a.i(fdiv(v(4), v(5), v(6)));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        for r in 2..7 {
            m.set_reg(v(r), f64::to_bits(1.5 + f64::from(r)));
        }
        let trace = m.run(20_000);
        let s = simulate(CoreConfig::table2(), &trace);
        // 2 divides × 12 cycles, non-pipelined → ≥ 24 cycles/iter.
        let per_iter = s.cycles as f64 / 2_000.0;
        assert!(per_iter >= 20.0, "cycles/iter = {per_iter} (divider pipelined?)");
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::config::RecoveryPolicy;
    use tvp_isa::flags::Cond;
    use tvp_isa::inst::build::*;
    use tvp_isa::inst::AddrMode;
    use tvp_isa::reg::x;
    use tvp_workloads::program::Asm;
    use tvp_workloads::Machine;

    /// A wide (64-bit) loaded value that changes periodically, with a
    /// chain of dependent work — GVP gains confidence, mispredicts on
    /// each change, and under Replay only the consumers re-execute.
    fn wide_flipping_trace() -> Trace {
        let mut a = Asm::new();
        a.i(movz(x(9), 25_000));
        a.label("loop");
        a.i(and(x(1), x(9), 0xFFFi64));
        a.i(cmp(x(1), 2048i64));
        a.i(cset(x(2), Cond::Cc));
        a.i(lsl(x(2), x(2), 40i64)); // wide value: 0 or 1<<40
        a.i(add(x(2), x(2), 0x1234i64));
        a.i(str(x(2), AddrMode::BaseDisp { base: x(20), disp: 0 }));
        a.i(ldr(x(3), AddrMode::BaseDisp { base: x(20), disp: 0 })); // wide, GVP-only
        a.i(lsr(x(4), x(3), 8i64)); // consumers
        a.i(add(x(5), x(5), x(4)));
        a.i(eor(x(6), x(3), x(5)));
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        let mut m = Machine::new(a.assemble().unwrap());
        m.set_reg(x(20), 0x60_0000);
        m.run(280_000)
    }

    #[test]
    fn replay_retires_exactly_and_replays_instead_of_flushing() {
        let trace = wide_flipping_trace();
        let run = |policy: RecoveryPolicy| {
            let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
            cfg.recovery = policy;
            simulate(cfg, &trace)
        };
        let flush = run(RecoveryPolicy::Flush);
        let replay = run(RecoveryPolicy::Replay);
        assert_eq!(flush.insts_retired, trace.arch_insts);
        assert_eq!(replay.insts_retired, trace.arch_insts);
        if flush.flush.vp_flushes > 0 {
            assert!(
                replay.flush.vp_replays > 0,
                "replay policy should convert flushes into replays"
            );
            assert!(
                replay.flush.vp_flushes < flush.flush.vp_flushes,
                "replays: {} flushes remain {} (was {})",
                replay.flush.vp_replays,
                replay.flush.vp_flushes,
                flush.flush.vp_flushes
            );
            // Replay squashes nothing for the replayed events.
            assert!(replay.flush.squashed_uops <= flush.flush.squashed_uops);
            // And should not be slower.
            assert!(
                replay.cycles <= flush.cycles + flush.cycles / 50,
                "replay {} vs flush {}",
                replay.cycles,
                flush.cycles
            );
        }
    }

    #[test]
    fn replay_policy_never_applies_to_named_predictions() {
        // MVP predictions have no register to repair: even under
        // Replay they must flush (and refetch the µop itself).
        let trace = wide_flipping_trace();
        let mut cfg = CoreConfig::with_vp(VpMode::Mvp);
        cfg.recovery = RecoveryPolicy::Replay;
        let s = simulate(cfg, &trace);
        assert_eq!(s.insts_retired, trace.arch_insts);
        assert_eq!(s.flush.vp_replays, 0, "MVP cannot replay");
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = wide_flipping_trace();
        let run = || {
            let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
            cfg.recovery = RecoveryPolicy::Replay;
            simulate(cfg, &trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.flush.vp_replays, b.flush.vp_replays);
        assert_eq!(a.flush.replayed_uops, b.flush.replayed_uops);
    }

    #[test]
    fn replay_works_across_the_suite() {
        for name in ["pointer_chase", "discrete_event", "mc_playout"] {
            let w = tvp_workloads::suite::by_name(name).unwrap();
            let trace = w.trace(15_000);
            let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
            cfg.recovery = RecoveryPolicy::Replay;
            let s = simulate(cfg, &trace);
            assert_eq!(s.insts_retired, trace.arch_insts, "{name}");
        }
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;
    use tvp_isa::flags::Cond;
    use tvp_isa::inst::build::*;
    use tvp_isa::reg::x;
    use tvp_workloads::program::Asm;
    use tvp_workloads::Machine;

    fn tight_loop_trace(body_nops: usize, iters: i64) -> Trace {
        let mut a = Asm::new();
        a.i(movz(x(9), iters));
        a.label("loop");
        for _ in 0..body_nops {
            a.i(add(x(1), x(2), x(3)));
        }
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "loop");
        Machine::new(a.assemble().unwrap()).run(200_000)
    }

    #[test]
    fn taken_branch_penalty_costs_cycles() {
        // A tiny loop is taken-branch-bound: raising the penalty must
        // slow it by roughly one cycle per iteration.
        let trace = tight_loop_trace(2, 4_000);
        let run = |penalty: u64| {
            let mut cfg = CoreConfig::table2();
            cfg.taken_branch_penalty = penalty;
            simulate(cfg, &trace)
        };
        let fast = run(0);
        let slow = run(3);
        let delta = slow.cycles as f64 - fast.cycles as f64;
        assert!(
            delta > 4_000.0 * 2.0,
            "3 extra bubble cycles/iter should cost > 8k cycles, got {delta}"
        );
    }

    #[test]
    fn btb_warmup_is_visible_then_disappears() {
        // First encounter of each taken branch pays the decode-redirect
        // bubble; afterwards the BTB hits. Compare a huge-penalty
        // configuration: total cost must be bounded by (static branch
        // count × penalty), not scale with iterations.
        let trace = tight_loop_trace(6, 3_000);
        let run = |penalty: u64| {
            let mut cfg = CoreConfig::table2();
            cfg.btb_miss_penalty = penalty;
            simulate(cfg, &trace)
        };
        let base = run(0);
        let costly = run(40);
        let delta = costly.cycles.saturating_sub(base.cycles);
        assert!(delta < 40 * 16, "BTB misses must be warmup-only: delta {delta}");
    }

    #[test]
    fn fetch_queue_capacity_limits_frontend_runahead() {
        let trace = tight_loop_trace(10, 2_000);
        let run = |fq: usize| {
            let mut cfg = CoreConfig::table2();
            cfg.fetch_queue = fq;
            simulate(cfg, &trace)
        };
        let big = run(32);
        let tiny = run(2);
        assert!(tiny.cycles >= big.cycles, "a 2-entry fetch queue cannot be faster");
    }

    #[test]
    fn icache_misses_stall_cold_fetch_only() {
        // A program large enough to span many I-cache lines: the second
        // outer iteration must run much faster than the first.
        let mut a = Asm::new();
        a.i(movz(x(9), 40));
        a.label("outer");
        for i in 0..400 {
            a.i(add(x(1), x(2), i as i64 % 100));
        }
        a.i(subs(x(9), x(9), 1i64));
        a.b_cond(Cond::Ne, "outer");
        let trace = Machine::new(a.assemble().unwrap()).run(50_000);
        let s = simulate(CoreConfig::table2(), &trace);
        // 40 iterations × 402 insts at 8-wide ≈ 2k cycles + one cold
        // sweep; anything beyond ~3× ideal means repeated stalls.
        let ideal = trace.uops.len() as f64 / 8.0;
        assert!(
            (s.cycles as f64) < ideal * 3.0,
            "I-cache must warm up: {} vs ideal {}",
            s.cycles,
            ideal
        );
    }
}
