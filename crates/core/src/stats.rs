//! Simulation statistics: everything the paper's figures report.
//!
//! Counters on fault-campaign paths are hardened: [`sat_inc`] /
//! [`sat_add`] saturate at `u64::MAX` instead of wrapping and bump
//! [`SimStats::overflow_events`], so an arbitrarily long chaos run can
//! degrade a counter's precision but never silently corrupt reported
//! IPC.

// The saturating primitives moved to the dependency-free observability
// crate so mem/predictor statistics can share the discipline; the
// re-export keeps every existing `tvp_core::stats::sat_inc` call site
// and import working unchanged.
pub use tvp_obs::counters::{sat_add, sat_inc};

/// Rename-time elimination categories (Fig. 4's stacked bars).
#[must_use = "rename counters feed Fig. 4; dropping them silently skews the elimination breakdown"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RenameStats {
    /// Architectural instructions processed at rename (first µops).
    pub arch_insts: u64,
    /// µops processed at rename.
    pub uops: u64,
    /// Static zero-idiom eliminations (e.g. `eor x, x`, `movz #0`).
    pub zero_idiom: u64,
    /// Static one-idiom eliminations (`movz #1`).
    pub one_idiom: u64,
    /// Eliminated register moves (move elimination).
    pub move_elim: u64,
    /// Moves *not* eliminated due to the 64→32-bit width restriction.
    pub non_me_move: u64,
    /// 9-bit signed move-immediate idiom eliminations (TVP inlining).
    pub nine_bit_idiom: u64,
    /// Speculative strength reductions (Table 1, value-driven).
    pub spsr: u64,
    /// SpSR-reduced µops that were squashed by a later value
    /// misprediction flush (informational).
    pub spsr_squashed: u64,
}

impl RenameStats {
    /// Fraction of architectural instructions eliminated at rename by
    /// the given counter.
    #[must_use]
    pub fn fraction(&self, count: u64) -> f64 {
        if self.arch_insts == 0 {
            0.0
        } else {
            count as f64 / self.arch_insts as f64
        }
    }
}

/// Value prediction accounting (coverage/accuracy of §6.1).
#[must_use = "value-prediction counters feed the coverage/accuracy tables; dropping them hides mispredictions"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VpStats {
    /// VP-eligible µops seen at rename.
    pub eligible: u64,
    /// Predictions used (confident, admissible, not silenced).
    pub used: u64,
    /// Used predictions that validated correct.
    pub correct_used: u64,
    /// Used predictions that validated incorrect (each costs a flush).
    pub incorrect_used: u64,
    /// Cycles during which the predictor was silenced.
    pub silenced_lookups: u64,
}

impl VpStats {
    /// Coverage: `correct_used / eligible` (paper §6.1).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.eligible == 0 {
            0.0
        } else {
            self.correct_used as f64 / self.eligible as f64
        }
    }

    /// Accuracy: `correct_used / (correct_used + incorrect_used)`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.correct_used + self.incorrect_used;
        if total == 0 {
            1.0
        } else {
            self.correct_used as f64 / total as f64
        }
    }
}

/// Activity proxies for the power discussion (Fig. 6).
#[must_use = "activity counters feed the Fig. 6 power proxies"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivityStats {
    /// Integer PRF read ports exercised at issue.
    pub int_prf_reads: u64,
    /// Integer PRF writes (writeback + GVP prediction writes).
    pub int_prf_writes: u64,
    /// µops dispatched into the instruction queue.
    pub iq_dispatched: u64,
    /// µops issued from the instruction queue.
    pub iq_issued: u64,
}

/// Pipeline flush accounting.
#[must_use = "flush counters explain every cycle lost to recovery"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Branch mispredictions (front-end stalls in this trace-driven
    /// model).
    pub branch_mispredicts: u64,
    /// Value misprediction flushes.
    pub vp_flushes: u64,
    /// Memory-ordering violation flushes.
    pub mem_order_flushes: u64,
    /// µops squashed by flushes.
    pub squashed_uops: u64,
    /// Value mispredictions repaired by selective replay instead of a
    /// flush (GVP wide predictions under [`crate::config::RecoveryPolicy::Replay`]).
    pub vp_replays: u64,
    /// µops re-executed by replays.
    pub replayed_uops: u64,
}

/// Per-site fault-injection counters (one per
/// `tvp_chaos::FaultKind`), kept by the pipeline at the injection
/// sites.
#[must_use = "fault counters prove a chaos campaign actually exercised its sites"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Value predictions deliberately forced wrong at rename.
    pub vp_forced_mispredicts: u64,
    /// VTAGE entries corrupted (valid entry found and damaged).
    pub vtage_corruptions: u64,
    /// TAGE counter corruptions.
    pub tage_corruptions: u64,
    /// BTB entries invalidated.
    pub btb_corruptions: u64,
    /// Store-set SSIT/LFST corruptions.
    pub storeset_corruptions: u64,
    /// Branch-misprediction verdicts inverted in the front end.
    pub branch_inversions: u64,
    /// Data-cache accesses given extra latency.
    pub cache_delays: u64,
    /// Cycles with prefetch issue suppressed.
    pub prefetch_drop_cycles: u64,
}

impl ChaosStats {
    /// Total faults injected across every site.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.vp_forced_mispredicts
            .saturating_add(self.vtage_corruptions)
            .saturating_add(self.tage_corruptions)
            .saturating_add(self.btb_corruptions)
            .saturating_add(self.storeset_corruptions)
            .saturating_add(self.branch_inversions)
            .saturating_add(self.cache_delays)
            .saturating_add(self.prefetch_drop_cycles)
    }
}

/// Graceful-degradation accounting: kill-switches and the
/// misprediction-storm auto-throttle.
#[must_use = "degradation counters show whether the fallback engaged"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Times the auto-throttle engaged (VP/SpSR disabled).
    pub throttle_engagements: u64,
    /// Cycles spent with the throttle engaged.
    pub throttled_cycles: u64,
    /// Confident predictions suppressed by the VP kill-switch.
    pub killswitch_suppressed: u64,
    /// Confident predictions suppressed while throttled.
    pub throttle_suppressed: u64,
}

/// Top-level simulation result.
#[must_use = "a simulation result that is dropped was a wasted run"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Architectural instructions retired.
    pub insts_retired: u64,
    /// µops retired.
    pub uops_retired: u64,
    /// Rename/elimination counters.
    pub rename: RenameStats,
    /// Value prediction counters.
    pub vp: VpStats,
    /// Activity counters.
    pub activity: ActivityStats,
    /// Flush counters.
    pub flush: FlushStats,
    /// Fault-injection counters.
    pub chaos: ChaosStats,
    /// Graceful-degradation counters.
    pub degrade: DegradeStats,
    /// Counter saturations observed ([`sat_inc`]): non-zero means some
    /// counter above pinned at `u64::MAX` instead of wrapping.
    pub overflow_events: u64,
}

impl SimStats {
    /// Architectural instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_retired as f64 / self.cycles as f64
        }
    }

    /// µops per architectural instruction (Fig. 2 bars).
    #[must_use]
    pub fn expansion_ratio(&self) -> f64 {
        if self.insts_retired == 0 {
            1.0
        } else {
            self.uops_retired as f64 / self.insts_retired as f64
        }
    }

    /// Relative speedup over a baseline run of the same workload.
    /// Zero simulated cycles (an empty trace) reports parity rather
    /// than `inf`/`NaN`, matching the other guarded ratio helpers.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats {
            cycles: 1000,
            insts_retired: 2500,
            uops_retired: 2700,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.expansion_ratio() - 1.08).abs() < 1e-12);
        s.vp = VpStats {
            eligible: 1000,
            used: 300,
            correct_used: 299,
            incorrect_used: 1,
            ..Default::default()
        };
        assert!((s.vp.coverage() - 0.299).abs() < 1e-12);
        assert!(s.vp.accuracy() > 0.99);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let base = SimStats { cycles: 1100, insts_retired: 1000, ..Default::default() };
        let fast = SimStats { cycles: 1000, insts_retired: 1000, ..Default::default() };
        assert!((fast.speedup_over(&base) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn saturating_counters_never_wrap() {
        let mut counter = u64::MAX - 1;
        let mut overflows = 0;
        sat_inc(&mut counter, &mut overflows);
        assert_eq!(counter, u64::MAX);
        assert_eq!(overflows, 0);
        sat_inc(&mut counter, &mut overflows);
        assert_eq!(counter, u64::MAX, "pins instead of wrapping");
        assert_eq!(overflows, 1);
        sat_add(&mut counter, 1_000, &mut overflows);
        assert_eq!(counter, u64::MAX);
        assert_eq!(overflows, 2);
        let mut fresh = 10;
        sat_add(&mut fresh, 5, &mut overflows);
        assert_eq!(fresh, 15);
        assert_eq!(overflows, 2, "no spurious overflow events");
    }

    #[test]
    fn chaos_total_sums_all_sites() {
        let c = ChaosStats {
            vp_forced_mispredicts: 1,
            vtage_corruptions: 2,
            tage_corruptions: 3,
            btb_corruptions: 4,
            storeset_corruptions: 5,
            branch_inversions: 6,
            cache_delays: 7,
            prefetch_drop_cycles: 8,
        };
        assert_eq!(c.total(), 36);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.expansion_ratio(), 1.0);
        assert_eq!(s.vp.coverage(), 0.0);
        assert_eq!(s.vp.accuracy(), 1.0);
        assert_eq!(s.rename.fraction(5), 0.0);
    }

    #[test]
    fn every_ratio_helper_guards_a_zero_denominator() {
        // A zero-cycle self (empty trace) must not turn a speedup into
        // `inf`; parity is the only sane report.
        let zero = SimStats::default();
        let base = SimStats { cycles: 1_000, ..Default::default() };
        let sp = zero.speedup_over(&base);
        assert!(sp.is_finite(), "speedup_over(cycles=0) must stay finite, got {sp}");
        assert_eq!(sp, 1.0);
        // Zero-cycle baseline over a real run: plain ratio, still finite.
        assert_eq!(base.speedup_over(&zero), 0.0);
        // Both zero: parity.
        assert_eq!(zero.speedup_over(&zero), 1.0);

        // The other three ratio families with zero denominators.
        assert_eq!(zero.ipc(), 0.0);
        assert_eq!(zero.expansion_ratio(), 1.0);
        let vp = VpStats::default();
        assert_eq!(vp.coverage(), 0.0);
        assert_eq!(vp.accuracy(), 1.0);
        let rn = RenameStats::default();
        assert_eq!(rn.fraction(123), 0.0);
    }
}
