//! Fixed-capacity inline vector for per-µop hot-path structures.
//!
//! The rename/dispatch/commit path used to heap-allocate three `Vec`s
//! per renamed µop (scheduling deps, the RAT undo log and the ROB's
//! new-name capture) — millions of allocator round-trips per simulated
//! second, flagged by `cargo xtask lint`'s hot-path allocation rule.
//! Per-µop cardinalities are architecturally bounded (a µop has at
//! most [`MAX_SRC_REGS`] register sources and writes at most a
//! destination plus `NZCV`), so the storage lives inline in the
//! containing struct instead.

use std::ops::Deref;

/// Architectural bound on register sources per µop: `src1`, `src2`,
/// `src3`, up to two address registers (base + index) and `NZCV`.
pub const MAX_SRC_REGS: usize = 6;

/// Architectural bound on RAT writes per µop: the destination register
/// plus `NZCV` for flag-setters.
pub const MAX_DST_REGS: usize = 2;

/// A `Vec`-like container whose elements live inline, with a
/// compile-time capacity `N`.
#[derive(Clone, Copy, Debug)]
pub struct InlineVec<T, const N: usize> {
    len: u8,
    buf: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Empty vector.
    #[must_use]
    pub fn new() -> Self {
        InlineVec { len: 0, buf: [T::default(); N] }
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector is full — per-µop cardinalities are
    /// architecturally bounded, so overflow is a simulator bug.
    pub fn push(&mut self, value: T) {
        // capacity overflow is an architectural-invariant violation — fail loud
        assert!((self.len as usize) < N, "InlineVec capacity {N} exceeded");
        self.buf[self.len as usize] = value;
        self.len += 1;
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// An inline-first vector that spills to the heap past `N` elements.
///
/// The scheduler's per-physical-register consumer lists need this
/// shape: almost every register has zero, one or two waiting
/// consumers (inline, allocation-free on the per-cycle path), but a
/// long dependence fan-out can briefly exceed any fixed bound, and a
/// wakeup must never be dropped. Unlike [`InlineVec`], overflow is not
/// a bug here — it spills.
#[derive(Clone, Debug)]
pub struct SpillVec<T, const N: usize> {
    inline_len: u8,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SpillVec<T, N> {
    /// Empty vector (no heap allocation until the inline capacity is
    /// exceeded).
    #[must_use]
    pub fn new() -> Self {
        // audited(no-alloc-in-hot-path): Vec::new is capacity-0 — no heap allocation until spill
        SpillVec { inline_len: 0, inline: [T::default(); N], spill: Vec::new() }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.inline_len) + self.spill.len()
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inline_len == 0 && self.spill.is_empty()
    }

    /// Appends an element: inline while there is room, heap beyond.
    pub fn push(&mut self, value: T) {
        if usize::from(self.inline_len) < N {
            self.inline[usize::from(self.inline_len)] = value;
            self.inline_len += 1;
        } else {
            // spill past the inline capacity is the rare fan-out case, amortized
            self.spill.push(value);
        }
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline[..usize::from(self.inline_len)].iter().chain(self.spill.iter())
    }

    /// Moves every element into `out` (in insertion order) and empties
    /// the vector, retaining both the inline storage and the spill
    /// buffer's capacity.
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        out.extend_from_slice(&self.inline[..usize::from(self.inline_len)]);
        out.append(&mut self.spill);
        self.inline_len = 0;
    }

    /// Removes all elements, keeping the spill buffer's capacity.
    pub fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
    }
}

impl<T: Copy + Default, const N: usize> Default for SpillVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_deref_clear() {
        let mut v: InlineVec<u32, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(7);
        v.push(9);
        assert_eq!(*v, [7, 9]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.iter().copied().sum::<u32>(), 16);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity 2 exceeded")]
    fn overflow_fails_loud() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    fn collected<const N: usize>(v: &SpillVec<u32, N>) -> Vec<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn spill_vec_one_under_the_inline_cap_stays_inline() {
        let mut v: SpillVec<u32, 3> = SpillVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(collected(&v), [1, 2]);
    }

    #[test]
    fn spill_vec_exactly_at_the_inline_cap_stays_inline() {
        let mut v: SpillVec<u32, 3> = SpillVec::new();
        for x in [1, 2, 3] {
            v.push(x);
        }
        assert_eq!(v.len(), 3);
        assert_eq!(collected(&v), [1, 2, 3]);
    }

    #[test]
    fn spill_vec_one_past_the_inline_cap_spills_in_order() {
        let mut v: SpillVec<u32, 3> = SpillVec::new();
        for x in [1, 2, 3, 4] {
            v.push(x);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(collected(&v), [1, 2, 3, 4]);
        assert!(!v.is_empty());
    }

    #[test]
    fn spill_vec_drain_into_preserves_order_across_the_spill() {
        let mut v: SpillVec<u32, 2> = SpillVec::new();
        for x in 1..=5 {
            v.push(x);
        }
        let mut out = vec![0];
        v.drain_into(&mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 5]);
        assert!(v.is_empty());
        // Refill after the drain: inline storage is reusable.
        v.push(9);
        assert_eq!(collected(&v), [9]);
    }

    #[test]
    fn spill_vec_mem_take_after_spill_leaves_a_fresh_empty() {
        let mut v: SpillVec<u32, 2> = SpillVec::new();
        for x in 1..=4 {
            v.push(x);
        }
        let taken = std::mem::take(&mut v);
        assert_eq!(collected(&taken), [1, 2, 3, 4]);
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        v.push(7);
        v.push(8);
        v.push(9);
        assert_eq!(collected(&v), [7, 8, 9]);
    }

    #[test]
    fn spill_vec_clear_after_spill_keeps_working() {
        let mut v: SpillVec<u32, 1> = SpillVec::new();
        for x in 1..=3 {
            v.push(x);
        }
        v.clear();
        assert!(v.is_empty());
        v.push(42);
        assert_eq!(collected(&v), [42]);
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let mut a: InlineVec<u8, 4> = InlineVec::new();
        let mut b: InlineVec<u8, 4> = InlineVec::new();
        a.push(1);
        b.push(1);
        assert_eq!(a, b);
        b.push(2);
        assert_ne!(a, b);
    }
}
