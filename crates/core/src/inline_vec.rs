//! Fixed-capacity inline vector for per-µop hot-path structures.
//!
//! The rename/dispatch/commit path used to heap-allocate three `Vec`s
//! per renamed µop (scheduling deps, the RAT undo log and the ROB's
//! new-name capture) — millions of allocator round-trips per simulated
//! second, flagged by `cargo xtask lint`'s hot-path allocation rule.
//! Per-µop cardinalities are architecturally bounded (a µop has at
//! most [`MAX_SRC_REGS`] register sources and writes at most a
//! destination plus `NZCV`), so the storage lives inline in the
//! containing struct instead.

use std::ops::Deref;

/// Architectural bound on register sources per µop: `src1`, `src2`,
/// `src3`, up to two address registers (base + index) and `NZCV`.
pub const MAX_SRC_REGS: usize = 6;

/// Architectural bound on RAT writes per µop: the destination register
/// plus `NZCV` for flag-setters.
pub const MAX_DST_REGS: usize = 2;

/// A `Vec`-like container whose elements live inline, with a
/// compile-time capacity `N`.
#[derive(Clone, Copy, Debug)]
pub struct InlineVec<T, const N: usize> {
    len: u8,
    buf: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Empty vector.
    #[must_use]
    pub fn new() -> Self {
        InlineVec { len: 0, buf: [T::default(); N] }
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector is full — per-µop cardinalities are
    /// architecturally bounded, so overflow is a simulator bug.
    pub fn push(&mut self, value: T) {
        // audited: capacity overflow is an architectural-invariant violation — fail loud
        assert!((self.len as usize) < N, "InlineVec capacity {N} exceeded");
        self.buf[self.len as usize] = value;
        self.len += 1;
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_deref_clear() {
        let mut v: InlineVec<u32, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(7);
        v.push(9);
        assert_eq!(*v, [7, 9]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.iter().copied().sum::<u32>(), 16);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity 2 exceeded")]
    fn overflow_fails_loud() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let mut a: InlineVec<u8, 4> = InlineVec::new();
        let mut b: InlineVec<u8, 4> = InlineVec::new();
        a.push(1);
        b.push(1);
        assert_eq!(a, b);
        b.push(2);
        assert_ne!(a, b);
    }
}
