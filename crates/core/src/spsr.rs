//! Speculative Strength Reduction — the paper's Table 1 decision logic.
//!
//! Given a micro-op and whatever operand values are *known at rename*
//! (through hardwired registers, inlined names, or the frontend NZCV
//! register), [`reduce`] decides whether the µop can disappear at
//! rename and what its destination should be renamed to.
//!
//! The same function implements baseline Dynamic Strength Reduction
//! (move/zero/one-idiom elimination): the caller controls *which*
//! knowledge is visible. With only architectural knowledge (`xzr`
//! sources, `eor x, x`, `movz` immediates) the reductions found are the
//! baseline's; with name-derived knowledge they are SpSR.

use tvp_isa::exec::{exec_alu, Operands};
use tvp_isa::flags::{Cond, Nzcv};
use tvp_isa::inst::{Inst, Src2};
use tvp_isa::op::Op;

/// Operand knowledge available to the reducer at rename time.
#[derive(Copy, Clone, Debug, Default)]
pub struct Known {
    /// Value of `src1`, if known.
    pub src1: Option<u64>,
    /// Value of `src2` (immediate operands are always known).
    pub src2: Option<u64>,
    /// Condition flags, if tracked by the frontend NZCV register.
    pub flags: Option<Nzcv>,
}

/// The outcome of a reduction decision.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Reduction {
    /// Not reducible with the available knowledge.
    None,
    /// Destination is always `0x0` → rename to the hardwired zero
    /// register. Carries the computed flags for flag-setting ops.
    ZeroIdiom {
        /// Flags to install in the frontend NZCV register (flag-setting
        /// reductions only).
        flags: Option<Nzcv>,
    },
    /// Destination is always `0x1` → rename to the hardwired one
    /// register.
    OneIdiom {
        /// Flags to install, if the op sets flags.
        flags: Option<Nzcv>,
    },
    /// Destination equals `src1` → move elimination path.
    MoveOfSrc1,
    /// Destination equals `src2` → move elimination path.
    MoveOfSrc2,
    /// The full result is computable at rename (all inputs known).
    KnownValue {
        /// The computed destination value.
        value: u64,
        /// Computed flags, for flag-setting ops.
        flags: Option<Nzcv>,
    },
    /// A conditional branch whose direction is known at rename.
    ResolvedBranch {
        /// The architecturally-determined direction.
        taken: bool,
    },
}

impl Reduction {
    /// Returns `true` for any reduction other than [`Reduction::None`].
    #[must_use]
    pub fn is_reduced(self) -> bool {
        self != Reduction::None
    }
}

/// Returns `true` if `op` is in the set of operations Table 1
/// considers for strength reduction.
#[must_use]
pub fn table1_op(op: Op) -> bool {
    matches!(
        op,
        Op::Add
            | Op::Sub
            | Op::And
            | Op::Orr
            | Op::Eor
            | Op::Bic
            | Op::Lsl
            | Op::Lsr
            | Op::Asr
            | Op::Ubfx { .. }
            | Op::Rbit
            | Op::Mov
            | Op::Csel(_)
            | Op::Csinc(_)
            | Op::Csneg(_)
            | Op::Cbz
            | Op::Cbnz
            | Op::Tbz(_)
            | Op::Tbnz(_)
            | Op::BCond(_)
    )
}

fn value_reduction(_uop: &Inst, value: u64, flags: Option<Nzcv>) -> Reduction {
    match value {
        0 => Reduction::ZeroIdiom { flags },
        1 => Reduction::OneIdiom { flags },
        _ => Reduction::KnownValue { value, flags },
    }
}

/// Applies Table 1 to one micro-op.
///
/// The reducer is conservative about flags: a flag-setting operation is
/// only reduced when its flags are fully computable at rename (the
/// paper's hardwired-NZCV assumption, §4.2).
#[must_use]
pub fn reduce(uop: &Inst, known: &Known) -> Reduction {
    if !table1_op(uop.op) {
        return Reduction::None;
    }
    let k1 = known.src1;
    let k2 = match uop.src2 {
        Src2::Imm(i) => Some(i as u64),
        _ => known.src2,
    };

    // Fully-known operands: compute the result (and flags) outright.
    // This subsumes the "if src0 == 0x1 and src1 == 0x1" rows of
    // Table 1 and generalises them under TVP's 9-bit knowledge.
    let all_known = match uop.op {
        Op::Mov | Op::Rbit | Op::Ubfx { .. } => k1.is_some(),
        Op::Cbz | Op::Cbnz | Op::Tbz(_) | Op::Tbnz(_) => k1.is_some(),
        Op::BCond(_) => known.flags.is_some(),
        Op::Csel(_) | Op::Csinc(_) | Op::Csneg(_) => false, // handled below
        _ => k1.is_some() && k2.is_some(),
    };

    match uop.op {
        Op::Cbz | Op::Cbnz | Op::Tbz(_) | Op::Tbnz(_) if all_known => {
            let taken =
                tvp_isa::exec::branch_taken(uop.op, uop.width, k1.unwrap(), Nzcv::default());
            return Reduction::ResolvedBranch { taken };
        }
        Op::BCond(c) => {
            return match known.flags {
                Some(f) => Reduction::ResolvedBranch { taken: c.eval(f) },
                None => Reduction::None,
            };
        }
        Op::Cbz | Op::Cbnz | Op::Tbz(_) | Op::Tbnz(_) => return Reduction::None,
        _ => {}
    }

    // Conditional selects: reducible once the flags are known (§4.2).
    if let Op::Csel(c) | Op::Csinc(c) | Op::Csneg(c) = uop.op {
        let Some(f) = known.flags else { return Reduction::None };
        let cond_true = c.eval(f);
        return match (uop.op, cond_true) {
            // Condition true: all three select src1 — a plain move.
            (_, true) => match k1 {
                Some(v) => value_reduction(uop, v & uop.width.mask(), None),
                None => Reduction::MoveOfSrc1,
            },
            // csel false: selects src2 — also a move.
            (Op::Csel(_), false) => match k2 {
                Some(v) => value_reduction(uop, v & uop.width.mask(), None),
                None => Reduction::MoveOfSrc2,
            },
            // csinc/csneg false: compute only if src2 is known
            // (the paper reduces these only when the condition is
            // true; with full knowledge we can go further).
            (_, false) => match k2 {
                Some(_) => {
                    let r = exec_alu(
                        uop.op,
                        uop.width,
                        false,
                        Operands { a: 0, b: k2.unwrap(), flags: f, ..Default::default() },
                    );
                    value_reduction(uop, r.value, None)
                }
                None => Reduction::None,
            },
        };
    }

    if all_known {
        let r = exec_alu(
            uop.op,
            uop.width,
            uop.sets_flags,
            Operands {
                a: k1.unwrap_or(0),
                b: k2.unwrap_or(0),
                flags: known.flags.unwrap_or_default(),
                ..Default::default()
            },
        );
        if uop.sets_flags && r.flags.is_none() {
            return Reduction::None;
        }
        return value_reduction(uop, r.value, r.flags);
    }

    // Partially-known idioms (the heart of Table 1). Flag-setting ops
    // may only reduce when the flags are still fully determined — for
    // `ands`, a single zero operand forces result 0 and NZCV to the
    // zero-result pattern.
    let (z1, z2) = (k1 == Some(0), k2 == Some(0));
    match uop.op {
        Op::And | Op::Bic if z1 => {
            let flags = uop.sets_flags.then_some(Nzcv::ZERO_RESULT);
            Reduction::ZeroIdiom { flags }
        }
        Op::And if z2 => {
            let flags = uop.sets_flags.then_some(Nzcv::ZERO_RESULT);
            Reduction::ZeroIdiom { flags }
        }
        _ if uop.sets_flags => Reduction::None,
        Op::Add | Op::Orr | Op::Eor if z1 => Reduction::MoveOfSrc2,
        Op::Add | Op::Orr | Op::Eor if z2 => Reduction::MoveOfSrc1,
        Op::Sub | Op::Bic if z2 => Reduction::MoveOfSrc1,
        Op::Lsl | Op::Lsr | Op::Asr if z1 => Reduction::ZeroIdiom { flags: None },
        Op::Lsl | Op::Lsr | Op::Asr if z2 => Reduction::MoveOfSrc1,
        Op::Ubfx { .. } | Op::Rbit if z1 => Reduction::ZeroIdiom { flags: None },
        // eor x, x (same register) is a zero idiom even without known
        // values — the caller detects the same-register case and passes
        // equal knowledge; here we handle the known-equal-values case.
        Op::Eor if k1.is_some() && k1 == k2 => Reduction::ZeroIdiom { flags: None },
        _ => Reduction::None,
    }
}

/// Evaluates whether `eor dst, a, a` (both sources the same
/// architectural register) — the classic static zero idiom.
#[must_use]
pub fn is_static_eor_zero(uop: &Inst) -> bool {
    uop.op == Op::Eor
        && !uop.sets_flags
        && uop.src1.is_some()
        && uop.src2.reg().is_some()
        && uop.src1 == uop.src2.reg()
}

/// The condition a `b.cond`/`csel`-family op evaluates, for frontend
/// NZCV invalidation bookkeeping.
#[must_use]
pub fn consumed_cond(op: Op) -> Option<Cond> {
    op.cond()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvp_isa::inst::build::*;
    use tvp_isa::reg::x;

    fn k(src1: Option<u64>, src2: Option<u64>) -> Known {
        Known { src1, src2, flags: None }
    }

    // ---- Table 1, row by row ----

    #[test]
    fn row_sub_imm1_with_src0_one() {
        // sub dst, src0, #1 : zero-idiom when src0 == 0x1.
        let u = sub(x(0), x(1), 1i64);
        assert_eq!(reduce(&u, &k(Some(1), None)), Reduction::ZeroIdiom { flags: None });
        assert_eq!(reduce(&u, &k(None, None)), Reduction::None);
    }

    #[test]
    fn row_sub_reg() {
        let u = sub(x(0), x(1), x(2));
        // src1 == 0x0 → move of src0.
        assert_eq!(reduce(&u, &k(None, Some(0))), Reduction::MoveOfSrc1);
        // both 0x1 → zero idiom.
        assert_eq!(reduce(&u, &k(Some(1), Some(1))), Reduction::ZeroIdiom { flags: None });
        // src0 == 0x0 alone is not reducible (negation).
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::None);
    }

    #[test]
    fn row_add_orr_eor_imm1_one_idiom() {
        for u in [add(x(0), x(1), 1i64), orr(x(0), x(1), 1i64), eor(x(0), x(1), 1i64)] {
            assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::OneIdiom { flags: None }, "{u}");
        }
    }

    #[test]
    fn row_add_orr_eor_reg_move_idiom() {
        for u in [add(x(0), x(1), x(2)), orr(x(0), x(1), x(2)), eor(x(0), x(1), x(2))] {
            assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::MoveOfSrc2, "{u}");
            assert_eq!(reduce(&u, &k(None, Some(0))), Reduction::MoveOfSrc1, "{u}");
        }
    }

    #[test]
    fn row_and_imm1() {
        let u = and(x(0), x(1), 1i64);
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None });
        assert_eq!(reduce(&u, &k(Some(1), None)), Reduction::OneIdiom { flags: None });
    }

    #[test]
    fn row_and_reg_zero_idiom() {
        let u = and(x(0), x(1), x(2));
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None });
        assert_eq!(reduce(&u, &k(None, Some(0))), Reduction::ZeroIdiom { flags: None });
    }

    #[test]
    fn row_shifts() {
        for u in [lsr(x(0), x(1), 4i64), lsl(x(0), x(1), 4i64)] {
            assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None }, "{u}");
        }
        let u = lsl(x(0), x(1), x(2));
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None });
        assert_eq!(reduce(&u, &k(None, Some(0))), Reduction::MoveOfSrc1, "shift by zero is a move");
    }

    #[test]
    fn row_ubfm_and_rbit() {
        let u = ubfx(x(0), x(1), 8, 8);
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None });
        let u = rbit(x(0), x(1));
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None });
    }

    #[test]
    fn row_bic() {
        let u = bic(x(0), x(1), x(2));
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None });
        assert_eq!(reduce(&u, &k(None, Some(0))), Reduction::MoveOfSrc1);
    }

    #[test]
    fn row_ands_nop_plus_nzcv() {
        let u = ands(x(0), x(1), x(2));
        // Any zero operand → result 0, flags {n=0,Z=1,c=0,v=0}.
        for known in [k(Some(0), None), k(None, Some(0))] {
            match reduce(&u, &known) {
                Reduction::ZeroIdiom { flags: Some(f) } => assert_eq!(f, Nzcv::ZERO_RESULT),
                r => panic!("expected zero idiom with flags, got {r:?}"),
            }
        }
        // ands with both == 0x1 → result 1 + flags.
        match reduce(&u, &k(Some(1), Some(1))) {
            Reduction::OneIdiom { flags: Some(f) } => {
                assert!(!f.z && !f.n && !f.c && !f.v);
            }
            r => panic!("expected one idiom with flags, got {r:?}"),
        }
        // A flag-setter with a single known non-zero operand must NOT
        // reduce (flags not determined).
        assert_eq!(reduce(&u, &k(Some(1), None)), Reduction::None);
    }

    #[test]
    fn row_subs_adds_fully_known() {
        let u = subs(x(0), x(1), x(2));
        match reduce(&u, &k(Some(1), Some(1))) {
            Reduction::ZeroIdiom { flags: Some(f) } => {
                assert!(f.z && f.c, "1 - 1 = 0 with no borrow");
            }
            r => panic!("expected zero idiom, got {r:?}"),
        }
        match reduce(&adds(x(0), x(1), x(2)), &k(Some(0), Some(1))) {
            Reduction::OneIdiom { flags: Some(f) } => assert!(!f.z),
            r => panic!("expected one idiom, got {r:?}"),
        }
        // Partially known flag-setters never reduce.
        assert_eq!(reduce(&u, &k(None, Some(0))), Reduction::None);
    }

    #[test]
    fn row_cbz_tbz_resolution() {
        let mut cbz_u = Inst::new(Op::Cbz);
        cbz_u.src1 = Some(x(3));
        cbz_u.target = Some(0x40);
        assert_eq!(reduce(&cbz_u, &k(Some(0), None)), Reduction::ResolvedBranch { taken: true });
        assert_eq!(reduce(&cbz_u, &k(Some(1), None)), Reduction::ResolvedBranch { taken: false });
        assert_eq!(reduce(&cbz_u, &k(None, None)), Reduction::None);

        let mut tbz_u = Inst::new(Op::Tbz(0));
        tbz_u.src1 = Some(x(3));
        tbz_u.target = Some(0x40);
        assert_eq!(reduce(&tbz_u, &k(Some(1), None)), Reduction::ResolvedBranch { taken: false });
    }

    #[test]
    fn row_bcond_with_known_flags() {
        let mut u = Inst::new(Op::BCond(Cond::Eq));
        u.target = Some(0x80);
        let known = Known { flags: Some(Nzcv::ZERO_RESULT), ..Default::default() };
        assert_eq!(reduce(&u, &known), Reduction::ResolvedBranch { taken: true });
        let known = Known { flags: Some(Nzcv::default()), ..Default::default() };
        assert_eq!(reduce(&u, &known), Reduction::ResolvedBranch { taken: false });
        assert_eq!(reduce(&u, &Known::default()), Reduction::None);
    }

    #[test]
    fn row_csel_family() {
        let zf = Some(Nzcv::ZERO_RESULT); // Eq holds
        let nf = Some(Nzcv::default()); // Eq fails

        let u = csel(x(0), x(1), x(2), Cond::Eq);
        assert_eq!(reduce(&u, &Known { flags: zf, ..Default::default() }), Reduction::MoveOfSrc1);
        assert_eq!(reduce(&u, &Known { flags: nf, ..Default::default() }), Reduction::MoveOfSrc2);
        assert_eq!(reduce(&u, &Known::default()), Reduction::None, "NZCV not available");

        // csinc with condition true → move of src1 (paper's rule).
        let u = csinc(x(0), x(1), x(2), Cond::Eq);
        assert_eq!(reduce(&u, &Known { flags: zf, ..Default::default() }), Reduction::MoveOfSrc1);
        // Condition false with known src2 → computable (src2 + 1).
        assert_eq!(
            reduce(&u, &Known { flags: nf, src2: Some(41), ..Default::default() }),
            Reduction::KnownValue { value: 42, flags: None }
        );
        // Condition false, src2 unknown → not reduced.
        assert_eq!(reduce(&u, &Known { flags: nf, ..Default::default() }), Reduction::None);

        // csneg, condition false, known src2 → negated value.
        let u = csneg(x(0), x(1), x(2), Cond::Eq);
        assert_eq!(
            reduce(&u, &Known { flags: nf, src2: Some(5), ..Default::default() }),
            Reduction::KnownValue { value: 5u64.wrapping_neg(), flags: None }
        );
    }

    // ---- general properties ----

    #[test]
    fn known_values_compute_via_exec_semantics() {
        let u = add(x(0), x(1), x(2));
        assert_eq!(
            reduce(&u, &k(Some(20), Some(22))),
            Reduction::KnownValue { value: 42, flags: None }
        );
        // Width is respected.
        let u = w32(add(x(0), x(1), x(2)));
        assert_eq!(
            reduce(&u, &k(Some(0xFFFF_FFFF), Some(1))),
            Reduction::ZeroIdiom { flags: None }
        );
    }

    #[test]
    fn non_table1_ops_never_reduce() {
        let u = mul(x(0), x(1), x(2));
        assert_eq!(reduce(&u, &k(Some(0), Some(0))), Reduction::None);
        let u = udiv(x(0), x(1), x(2));
        assert_eq!(reduce(&u, &k(Some(0), Some(1))), Reduction::None);
    }

    #[test]
    fn static_eor_zero_detection() {
        assert!(is_static_eor_zero(&eor(x(0), x(3), x(3))));
        assert!(!is_static_eor_zero(&eor(x(0), x(3), x(4))));
        assert!(!is_static_eor_zero(&eor(x(0), x(3), 0i64)));
    }

    #[test]
    fn mov_with_known_source_becomes_value() {
        let u = mov(x(0), x(1));
        assert_eq!(reduce(&u, &k(Some(7), None)), Reduction::KnownValue { value: 7, flags: None });
        assert_eq!(reduce(&u, &k(Some(0), None)), Reduction::ZeroIdiom { flags: None });
    }
}
