//! # tvp-core — out-of-order core with MVP/TVP/GVP value prediction
//! and Speculative Strength Reduction
//!
//! The paper's primary contribution, implemented on a from-scratch
//! cycle-level superscalar pipeline (paper Table 2 geometry):
//!
//! * [`config`] — machine configuration and the VP/SpSR feature matrix;
//! * [`physreg`] — widened physical register names (value inlining,
//!   hardwired 0/1 and NZCV registers) and reference-counted register
//!   files;
//! * [`rename`] — RAT/CRAT renaming with move elimination, 0/1-idiom
//!   and 9-bit-idiom elimination, MVP/TVP/GVP destination handling and
//!   SpSR;
//! * [`spsr`] — the Table 1 strength-reduction decision logic;
//! * [`storesets`] — Store Sets memory dependence prediction;
//! * [`pipeline`] — the fetch/rename/issue/execute/commit cycle model
//!   (replays `tvp-workloads` traces);
//! * [`stats`] — every counter the paper's figures report.
//!
//! # Examples
//!
//! ```
//! use tvp_core::config::VpMode;
//! use tvp_core::pipeline::simulate_vp;
//!
//! let workload = tvp_workloads::suite::by_name("mc_playout").unwrap();
//! let trace = workload.trace(5_000);
//! let base = simulate_vp(VpMode::Off, false, &trace);
//! assert_eq!(base.insts_retired, 5_000);
//! assert!(base.ipc() > 0.1);
//! ```

pub mod config;
pub mod inline_vec;
pub mod physreg;
pub mod pipeline;
pub mod rename;
pub mod scheduler;
pub mod spsr;
pub mod stats;
pub mod storesets;

pub use config::{CoreConfig, VpMode};
pub use pipeline::{simulate, simulate_vp, Core};
pub use stats::SimStats;
