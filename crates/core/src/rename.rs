//! Register renaming with DSR, 9-bit idiom elimination, MVP/TVP/GVP
//! destination handling and SpSR.
//!
//! The renamer owns the speculative RAT, the committed RAT (CRAT), the
//! free lists and the SpSR frontend-NZCV view (which is simply "the
//! flags RAT entry is a [`PhysName::KnownFlags`] name"). The pipeline
//! drives it one µop at a time — intra-group dependencies fall out of
//! sequential processing, and rollback uses per-µop undo records, the
//! Active-List walk of §3.2.1.

use tvp_isa::flags::Nzcv;
use tvp_isa::inst::Inst;
use tvp_isa::op::{Op, Width};
use tvp_isa::reg::{Reg, NUM_DENSE_REGS};

use crate::config::CoreConfig;
use crate::inline_vec::{InlineVec, MAX_DST_REGS, MAX_SRC_REGS};
use crate::physreg::{PhysName, RegFile, PHYS_ONE, PHYS_ZERO};
use crate::spsr::{is_static_eor_zero, reduce, Known, Reduction};
use crate::stats::{sat_inc, RenameStats};

/// Register file class.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum RegClass {
    /// Integer registers (including renamed `NZCV`).
    #[default]
    Int,
    /// FP/SIMD registers.
    Fp,
}

/// Class of an architectural register.
#[must_use]
pub fn class_of(reg: Reg) -> RegClass {
    if reg.is_fp() {
        RegClass::Fp
    } else {
        RegClass::Int
    }
}

/// A scheduling dependency on a real physical register.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Dep {
    /// Register class.
    pub class: RegClass,
    /// Physical register id.
    pub p: u16,
}

/// Why a µop disappeared at rename (Fig. 4's categories).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ElimCategory {
    /// Static zero idiom (`eor x,x`, `movz #0`, `and` with `xzr`, …).
    ZeroIdiom,
    /// Static one idiom (`movz #1`).
    OneIdiom,
    /// Move elimination.
    MoveElim,
    /// 9-bit signed move-immediate inlining (TVP).
    NineBit,
    /// Speculative strength reduction (value-driven, Table 1).
    Spsr,
}

/// How the value prediction for a µop's destination was applied.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PredApply {
    /// Renamed to a hardwired or inlined name — no physical register.
    Named,
    /// GVP wide value: allocated a register and wrote the prediction
    /// to the PRF at rename.
    WidePrfWrite,
}

/// The renamer's output for one µop.
#[derive(Clone, Debug, Default)]
pub struct RenamedUop {
    /// Scheduling dependencies (real registers only). Inline: a µop
    /// has at most [`MAX_SRC_REGS`] register sources, and the rename
    /// path must not hit the allocator once per µop.
    pub deps: InlineVec<Dep, MAX_SRC_REGS>,
    /// Integer PRF read ports this µop will exercise at issue.
    pub prf_reads: u32,
    /// Undo log: `(dense arch index, previous name)` pairs, oldest
    /// first. Also identifies the new mappings for commit. Inline: a
    /// µop maps at most [`MAX_DST_REGS`] registers (dest + `NZCV`).
    pub undo: InlineVec<(usize, PhysName), MAX_DST_REGS>,
    /// Register allocated for the destination, if any.
    pub dest_alloc: Option<(RegClass, u16)>,
    /// Register allocated for the flags, if any.
    pub flags_alloc: Option<u16>,
    /// Elimination category (µop skips the IQ entirely).
    pub eliminated: Option<ElimCategory>,
    /// The value this µop was predicted to produce (validate at
    /// execute).
    pub predicted: Option<(u64, PredApply)>,
    /// A conditional branch resolved at rename (SpSR).
    pub resolved_branch: Option<bool>,
    /// A move that could not be eliminated due to the 64→32-bit width
    /// restriction.
    pub non_me_move: bool,
}

/// Rename failure: out of physical registers; retry next cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RenameStall;

/// The renamer.
pub struct Renamer {
    rat: Vec<PhysName>,
    crat: Vec<PhysName>,
    int: RegFile,
    fp: RegFile,
    move_elim: bool,
    zero_one_idiom: bool,
    nine_bit_idiom: bool,
    spsr: bool,
    inlining: bool,
    pub(crate) stats: RenameStats,
    /// Saturation sink for the rename counters ([`sat_inc`]); folded
    /// into `SimStats::overflow_events` at the end of a run.
    pub(crate) overflow_events: u64,
}

impl Renamer {
    /// Builds a renamer for the given configuration, with every
    /// architectural register mapped to a fresh, ready physical
    /// register (the workload's initial state).
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        let mut int = RegFile::new(cfg.int_regs, 2);
        let mut fp = RegFile::new(cfg.fp_regs, 0);
        let mut rat = Vec::with_capacity(NUM_DENSE_REGS); // audited(no-alloc-in-hot-path): constructor
        for dense in 0..NUM_DENSE_REGS {
            let name = if dense == Reg::Int(tvp_isa::reg::ZERO_REG_INDEX).dense_index() {
                PhysName::Reg(PHYS_ZERO)
            } else if dense < 32 || dense == Reg::Nzcv.dense_index() {
                let p = int.alloc().expect("initial int mapping");
                int.set_ready(p, 0);
                PhysName::Reg(p)
            } else {
                let p = fp.alloc().expect("initial fp mapping");
                fp.set_ready(p, 0);
                PhysName::Reg(p)
            };
            rat.push(name);
        }
        // The CRAT shares the initial mappings under a single reference
        // each: one refcount unit covers a name's whole new_names → CRAT
        // lifetime, released when the next writer of the same register
        // commits (see `commit_with_names`). A second per-table
        // reference here would never be released — the registers would
        // leak out of the free list at their first overwrite.
        Renamer {
            crat: rat.clone(),
            rat,
            int,
            fp,
            move_elim: cfg.move_elim,
            zero_one_idiom: cfg.zero_one_idiom,
            nine_bit_idiom: cfg.nine_bit_idiom || cfg.vp.uses_inlining(),
            spsr: cfg.spsr,
            inlining: cfg.nine_bit_idiom || cfg.vp.uses_inlining(),
            stats: RenameStats::default(),
            overflow_events: 0,
        }
    }

    /// Current speculative mapping of an architectural register.
    #[must_use]
    pub fn name_of(&self, reg: Reg) -> PhysName {
        if reg.is_zero() {
            return PhysName::Reg(PHYS_ZERO);
        }
        self.rat[reg.dense_index()]
    }

    fn regfile(&mut self, class: RegClass) -> &mut RegFile {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Shared access to a register file class.
    #[must_use]
    pub fn file(&self, class: RegClass) -> &RegFile {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    /// Mutable access (the pipeline marks readiness at writeback).
    pub fn file_mut(&mut self, class: RegClass) -> &mut RegFile {
        self.regfile(class)
    }

    /// Runtime enable/disable for speculative strength reduction
    /// (kill-switch and auto-throttle graceful degradation). Only
    /// affects µops renamed after the call; in-flight reductions
    /// complete normally.
    pub fn set_spsr_enabled(&mut self, on: bool) {
        self.spsr = on;
    }

    /// Whether SpSR is currently applied at rename.
    #[must_use]
    pub fn spsr_enabled(&self) -> bool {
        self.spsr
    }

    /// The SpSR frontend NZCV view: flags known at rename time.
    #[must_use]
    pub fn frontend_flags(&self) -> Option<Nzcv> {
        self.rat[Reg::Nzcv.dense_index()].known_flags()
    }

    /// Rename statistics.
    pub fn stats(&self) -> RenameStats {
        self.stats
    }

    fn known_of_name(name: PhysName) -> Option<u64> {
        name.known_value()
    }

    /// Value knowledge for a source register, via its current name.
    /// Only meaningful for integer-class sources.
    fn dynamic_known(&self, reg: Option<Reg>) -> Option<u64> {
        let reg = reg?;
        if reg.is_zero() {
            return Some(0);
        }
        if !reg.is_int() {
            return None;
        }
        Self::known_of_name(self.rat[reg.dense_index()])
    }

    /// Static (architectural) knowledge: only the zero register.
    fn static_known(reg: Option<Reg>) -> Option<u64> {
        match reg {
            Some(r) if r.is_zero() => Some(0),
            _ => None,
        }
    }

    fn collect_deps(&self, uop: &Inst, out: &mut RenamedUop) {
        for src in uop.src_regs() {
            if src.is_zero() {
                continue;
            }
            let name = self.rat[src.dense_index()];
            if let PhysName::Reg(p) = name {
                let class = class_of(src);
                out.deps.push(Dep { class, p });
                if class == RegClass::Int && name.needs_prf_read() {
                    out.prf_reads += 1;
                }
            }
        }
    }

    /// Installs `name` as the new mapping of `reg`, recording undo.
    fn map_dest(&mut self, reg: Reg, name: PhysName, out: &mut RenamedUop) {
        if reg.is_zero() {
            return; // xzr writes are discarded; no mapping changes
        }
        let dense = reg.dense_index();
        out.undo.push((dense, self.rat[dense]));
        self.rat[dense] = name;
    }

    /// Can a move of `src_name` into a `width` destination be
    /// eliminated? Implements §5's width restriction and its TVP
    /// relaxation (known non-sign-extended values are safe).
    fn move_width_ok(&self, width: Width, src_name: PhysName) -> bool {
        if width == Width::W64 {
            return true;
        }
        match src_name {
            PhysName::Reg(p) => self.int.is32(p),
            PhysName::Inline(v) => v >= 0,
            PhysName::KnownFlags(_) => false,
        }
    }

    /// Whether `value` can be carried by a name in this configuration.
    fn representable(&self, value: u64) -> Option<PhysName> {
        if self.zero_one_idiom || self.inlining {
            if value == 0 {
                return Some(PhysName::Reg(PHYS_ZERO));
            }
            if value == 1 {
                return Some(PhysName::Reg(PHYS_ONE));
            }
        }
        if self.inlining {
            return PhysName::inline_for(value);
        }
        None
    }

    /// Applies a reduction's destination/flags effects. Returns the
    /// elimination category to record, or `None` if the reduction is
    /// not representable in this configuration.
    fn apply_reduction(
        &mut self,
        uop: &Inst,
        reduction: Reduction,
        category: ElimCategory,
        out: &mut RenamedUop,
    ) -> Option<ElimCategory> {
        let (dest_name, flags): (Option<PhysName>, Option<Nzcv>) = match reduction {
            Reduction::ZeroIdiom { flags } => (Some(PhysName::Reg(PHYS_ZERO)), flags),
            Reduction::OneIdiom { flags } => (Some(PhysName::Reg(PHYS_ONE)), flags),
            Reduction::KnownValue { value, flags } => {
                let name = self.representable(value)?;
                (Some(name), flags)
            }
            Reduction::MoveOfSrc1 | Reduction::MoveOfSrc2 => {
                if !self.move_elim {
                    return None;
                }
                let src =
                    if reduction == Reduction::MoveOfSrc1 { uop.src1 } else { uop.src2.reg() }?;
                let name = self.name_of(src);
                if !self.move_width_ok(uop.width, name) {
                    out.non_me_move = true;
                    sat_inc(&mut self.stats.non_me_move, &mut self.overflow_events);
                    return None;
                }
                if let PhysName::Reg(p) = name {
                    self.int.add_ref(p);
                }
                (Some(name), None)
            }
            Reduction::ResolvedBranch { taken } => {
                out.resolved_branch = Some(taken);
                (None, None)
            }
            Reduction::None => return None,
        };
        if uop.sets_flags {
            // Table 1 only reduces flag-setters with computable flags.
            let f = flags?;
            self.map_dest(Reg::Nzcv, PhysName::KnownFlags(f.pack()), out);
        }
        if let (Some(dst), Some(name)) = (uop.dst, dest_name) {
            self.map_dest(dst, name, out);
        }
        Some(category)
    }

    /// Renames one µop.
    ///
    /// `prediction` is the confident value prediction for this µop's
    /// destination (already filtered for eligibility, admissibility
    /// and silencing by the caller).
    ///
    /// # Errors
    ///
    /// Returns [`RenameStall`] when a physical register is needed and
    /// the free list is empty. No state is modified in that case.
    pub fn rename_uop(
        &mut self,
        uop: &Inst,
        first_uop: bool,
        prediction: Option<u64>,
    ) -> Result<RenamedUop, RenameStall> {
        let mut out = RenamedUop::default();
        self.collect_deps(uop, &mut out);
        sat_inc(&mut self.stats.uops, &mut self.overflow_events);
        if first_uop {
            sat_inc(&mut self.stats.arch_insts, &mut self.overflow_events);
        }

        // --- move-immediate idioms -------------------------------------
        if uop.op == Op::MovImm {
            let value = uop.src2.imm().unwrap_or(0) as u64 & uop.width.mask();
            if self.zero_one_idiom && value == 0 {
                self.map_dest(
                    uop.dst.expect("movz has a destination"),
                    PhysName::Reg(PHYS_ZERO),
                    &mut out,
                );
                out.eliminated = Some(ElimCategory::ZeroIdiom);
                sat_inc(&mut self.stats.zero_idiom, &mut self.overflow_events);
                return Ok(out);
            }
            if self.zero_one_idiom && value == 1 {
                self.map_dest(
                    uop.dst.expect("movz has a destination"),
                    PhysName::Reg(PHYS_ONE),
                    &mut out,
                );
                out.eliminated = Some(ElimCategory::OneIdiom);
                sat_inc(&mut self.stats.one_idiom, &mut self.overflow_events);
                return Ok(out);
            }
            if self.nine_bit_idiom {
                if let Some(name) = PhysName::inline_for(value) {
                    self.map_dest(uop.dst.expect("movz has a destination"), name, &mut out);
                    out.eliminated = Some(ElimCategory::NineBit);
                    sat_inc(&mut self.stats.nine_bit_idiom, &mut self.overflow_events);
                    return Ok(out);
                }
            }
        }

        // --- register-move elimination ----------------------------------
        if uop.op == Op::Mov && self.move_elim {
            let src = uop.src1.expect("mov has a source");
            let name = self.name_of(src);
            if self.move_width_ok(uop.width, name) {
                if let PhysName::Reg(p) = name {
                    self.int.add_ref(p);
                }
                self.map_dest(uop.dst.expect("mov has a destination"), name, &mut out);
                out.eliminated = Some(ElimCategory::MoveElim);
                sat_inc(&mut self.stats.move_elim, &mut self.overflow_events);
                return Ok(out);
            }
            out.non_me_move = true;
            sat_inc(&mut self.stats.non_me_move, &mut self.overflow_events);
        }

        // --- static DSR (baseline zero/one-idiom + move idioms) ---------
        if self.zero_one_idiom && uop.op != Op::Mov {
            let static_known = Known {
                src1: Self::static_known(uop.src1),
                src2: Self::static_known(uop.src2.reg()),
                flags: None,
            };
            let static_red = if is_static_eor_zero(uop) {
                Reduction::ZeroIdiom { flags: None }
            } else if static_known.src1.is_some() || static_known.src2.is_some() {
                reduce(uop, &static_known)
            } else {
                Reduction::None
            };
            let category = match static_red {
                Reduction::ZeroIdiom { .. } => Some(ElimCategory::ZeroIdiom),
                Reduction::OneIdiom { .. } => Some(ElimCategory::OneIdiom),
                Reduction::MoveOfSrc1 | Reduction::MoveOfSrc2 => Some(ElimCategory::MoveElim),
                Reduction::KnownValue { .. }
                | Reduction::ResolvedBranch { .. }
                | Reduction::None => None,
            };
            if let Some(cat) = category {
                if let Some(applied) = self.apply_reduction(uop, static_red, cat, &mut out) {
                    out.eliminated = Some(applied);
                    match applied {
                        ElimCategory::ZeroIdiom => {
                            sat_inc(&mut self.stats.zero_idiom, &mut self.overflow_events);
                        }
                        ElimCategory::OneIdiom => {
                            sat_inc(&mut self.stats.one_idiom, &mut self.overflow_events);
                        }
                        ElimCategory::MoveElim => {
                            sat_inc(&mut self.stats.move_elim, &mut self.overflow_events);
                        }
                        _ => {}
                    }
                    return Ok(out);
                }
            }
        }

        // --- SpSR (value-driven, Table 1) --------------------------------
        if self.spsr {
            let known = Known {
                src1: self.dynamic_known(uop.src1),
                src2: self.dynamic_known(uop.src2.reg()),
                flags: self.frontend_flags(),
            };
            // Skip cases static DSR already covers (pure-imm knowledge
            // was handled above); require at least one *dynamic* fact.
            let has_dynamic = (known.src1.is_some() && !uop.src1.is_some_and(Reg::is_zero))
                || (known.src2.is_some() && !uop.src2.reg().is_some_and(Reg::is_zero))
                || known.flags.is_some();
            if has_dynamic {
                let red = reduce(uop, &known);
                if red.is_reduced() {
                    if let Some(applied) =
                        self.apply_reduction(uop, red, ElimCategory::Spsr, &mut out)
                    {
                        out.eliminated = Some(applied);
                        sat_inc(&mut self.stats.spsr, &mut self.overflow_events);
                        return Ok(out);
                    }
                }
            }
        }

        // --- value prediction of the destination ------------------------
        if let Some(value) = prediction {
            if let Some(name) = self.representable(value) {
                if uop.sets_flags && self.int.free_count() < 1 {
                    return Err(self.unwind_stall(first_uop));
                }
                self.map_dest(uop.dst.expect("VP-eligible µops have a GPR dest"), name, &mut out);
                out.predicted = Some((value, PredApply::Named));
                if uop.sets_flags {
                    let p = self.int.alloc().expect("checked above");
                    out.flags_alloc = Some(p);
                    self.map_dest(Reg::Nzcv, PhysName::Reg(p), &mut out);
                }
                return Ok(out);
            }
            // GVP wide prediction: allocate and pre-write the PRF.
            if self.int.free_count() < 1 + usize::from(uop.sets_flags) {
                return Err(self.unwind_stall(first_uop));
            }
            let p = self.int.alloc().expect("checked above");
            self.int.set_ready(p, 0);
            self.int.set_is32(p, value <= u64::from(u32::MAX));
            self.map_dest(
                uop.dst.expect("VP-eligible µops have a GPR dest"),
                PhysName::Reg(p),
                &mut out,
            );
            out.dest_alloc = Some((RegClass::Int, p));
            out.predicted = Some((value, PredApply::WidePrfWrite));
            if uop.sets_flags {
                let pf = self.int.alloc().expect("checked above");
                out.flags_alloc = Some(pf);
                self.map_dest(Reg::Nzcv, PhysName::Reg(pf), &mut out);
            }
            return Ok(out);
        }

        // --- ordinary rename ---------------------------------------------
        let dest_class = uop.dst.filter(|d| !d.is_zero()).map(class_of);
        let int_need = usize::from(uop.sets_flags) + usize::from(dest_class == Some(RegClass::Int));
        let fp_need = usize::from(dest_class == Some(RegClass::Fp));
        if self.int.free_count() < int_need || self.fp.free_count() < fp_need {
            return Err(self.unwind_stall(first_uop));
        }
        if let Some(class) = dest_class {
            let dst = uop.dst.expect("dest_class implies a destination");
            let p = self.regfile(class).alloc().expect("checked above");
            self.map_dest(dst, PhysName::Reg(p), &mut out);
            out.dest_alloc = Some((class, p));
            let is32 = match uop.op {
                Op::Load { size, signed } => !signed && size <= 4,
                _ => uop.width == Width::W32,
            };
            self.regfile(class).set_is32(p, is32);
        }
        if uop.sets_flags {
            let p = self.int.alloc().expect("checked above");
            out.flags_alloc = Some(p);
            self.map_dest(Reg::Nzcv, PhysName::Reg(p), &mut out);
        }
        Ok(out)
    }

    /// Backs out the statistics counted optimistically at the top of
    /// [`Renamer::rename_uop`] when the µop stalls.
    fn unwind_stall(&mut self, first_uop: bool) -> RenameStall {
        // audited(saturating-counter): backs out this call's increment
        self.stats.uops -= 1;
        if first_uop {
            // audited(saturating-counter): backs out this call's increment
            self.stats.arch_insts -= 1;
        }
        RenameStall
    }

    /// Rolls back one µop's mappings (squash). Must be called in
    /// reverse rename order — the paper's Active-List walk (§3.2.1).
    pub fn rollback(&mut self, renamed: &RenamedUop) {
        for &(dense, old) in renamed.undo.iter().rev() {
            let current = self.rat[dense];
            if let PhysName::Reg(p) = current {
                let class = if (32..64).contains(&dense) { RegClass::Fp } else { RegClass::Int };
                self.regfile(class).release(p);
            }
            self.rat[dense] = old;
        }
    }

    /// Commits one µop's new mappings (provided by the ROB entry,
    /// which captured `(dense index, new name)` pairs at rename time).
    pub fn commit_with_names(&mut self, new_names: &[(usize, PhysName)]) {
        for &(dense, name) in new_names {
            let old = self.crat[dense];
            if let PhysName::Reg(p) = old {
                let class = if (32..64).contains(&dense) { RegClass::Fp } else { RegClass::Int };
                self.regfile(class).release(p);
            }
            self.crat[dense] = name;
        }
    }

    /// The committed mapping of a dense register index (tests).
    #[must_use]
    pub fn crat_entry(&self, dense: usize) -> PhysName {
        self.crat[dense]
    }

    /// The speculative mapping of a dense register index (the pipeline
    /// captures new names for ROB entries right after renaming).
    #[must_use]
    pub fn rat_entry(&self, dense: usize) -> PhysName {
        self.rat[dense]
    }
}

impl std::fmt::Debug for Renamer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Renamer")
            .field("int_free", &self.int.free_count())
            .field("fp_free", &self.fp.free_count())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VpMode;
    use tvp_isa::flags::Cond;
    use tvp_isa::inst::{build::*, AddrMode};
    use tvp_isa::reg::{x, XZR};

    fn renamer(vp: VpMode, spsr: bool) -> Renamer {
        let mut cfg = CoreConfig::with_vp(vp);
        cfg.spsr = spsr;
        Renamer::new(&cfg)
    }

    #[test]
    fn baseline_allocates_and_tracks_deps() {
        let mut r = renamer(VpMode::Off, false);
        let u = add(x(0), x(1), x(2));
        let out = r.rename_uop(&u, true, None).unwrap();
        assert!(out.eliminated.is_none());
        assert!(out.dest_alloc.is_some());
        assert_eq!(out.deps.len(), 2);
        assert_eq!(out.prf_reads, 2);
        // The new mapping is visible.
        assert_eq!(r.name_of(x(0)).reg(), Some(out.dest_alloc.unwrap().1));
    }

    #[test]
    fn movz_zero_one_idioms() {
        let mut r = renamer(VpMode::Off, false);
        let out = r.rename_uop(&movz(x(0), 0), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::ZeroIdiom));
        assert_eq!(r.name_of(x(0)), PhysName::Reg(PHYS_ZERO));
        let out = r.rename_uop(&movz(x(1), 1), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::OneIdiom));
        assert_eq!(r.name_of(x(1)), PhysName::Reg(PHYS_ONE));
        // Without inlining, movz #42 executes normally.
        let out = r.rename_uop(&movz(x(2), 42), true, None).unwrap();
        assert!(out.eliminated.is_none());
    }

    #[test]
    fn nine_bit_idiom_elimination_under_tvp() {
        let mut r = renamer(VpMode::Tvp, false);
        let out = r.rename_uop(&movz(x(0), 42), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::NineBit));
        assert_eq!(r.name_of(x(0)), PhysName::Inline(42));
        // Out of range still executes.
        let out = r.rename_uop(&movz(x(1), 300), true, None).unwrap();
        assert!(out.eliminated.is_none());
    }

    #[test]
    fn move_elimination_shares_registers() {
        let mut r = renamer(VpMode::Off, false);
        let src_p = r.name_of(x(5)).reg().unwrap();
        let rc_before = r.file(RegClass::Int).ref_count(src_p);
        let out = r.rename_uop(&mov(x(6), x(5)), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::MoveElim));
        assert_eq!(r.name_of(x(6)).reg(), Some(src_p));
        assert_eq!(r.file(RegClass::Int).ref_count(src_p), rc_before + 1);
    }

    #[test]
    fn w32_move_width_restriction() {
        let mut r = renamer(VpMode::Off, false);
        // x5's initial mapping is not known-32-bit → w-move not
        // eliminated (§5).
        let out = r.rename_uop(&w32(mov(x(6), x(5))), true, None).unwrap();
        assert!(out.eliminated.is_none());
        assert!(out.non_me_move);
        // After a 32-bit producer, the move eliminates.
        let _ = r.rename_uop(&w32(add(x(7), x(1), x(2))), true, None).unwrap();
        let out = r.rename_uop(&w32(mov(x(8), x(7))), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::MoveElim));
    }

    #[test]
    fn static_move_idioms_via_xzr() {
        let mut r = renamer(VpMode::Off, false);
        // add x0, x1, xzr → move of x1.
        let u = add(x(0), x(1), XZR);
        let out = r.rename_uop(&u, true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::MoveElim));
        assert_eq!(r.name_of(x(0)), r.name_of(x(1)));
        // eor x2, x3, x3 → zero idiom.
        let out = r.rename_uop(&eor(x(2), x(3), x(3)), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::ZeroIdiom));
        // and x4, x5, xzr → zero idiom.
        let out = r.rename_uop(&and(x(4), x(5), XZR), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::ZeroIdiom));
    }

    #[test]
    fn mvp_prediction_uses_hardwired_registers() {
        let mut r = renamer(VpMode::Mvp, false);
        let u = ldr(x(0), AddrMode::BaseDisp { base: x(1), disp: 0 });
        let out = r.rename_uop(&u, true, Some(0)).unwrap();
        assert_eq!(out.predicted, Some((0, PredApply::Named)));
        assert!(out.dest_alloc.is_none(), "MVP predictions need no register");
        assert_eq!(r.name_of(x(0)), PhysName::Reg(PHYS_ZERO));
    }

    #[test]
    fn tvp_prediction_inlines_value() {
        let mut r = renamer(VpMode::Tvp, false);
        let u = add(x(0), x(1), x(2));
        let out = r.rename_uop(&u, true, Some(42)).unwrap();
        assert_eq!(out.predicted, Some((42, PredApply::Named)));
        assert_eq!(r.name_of(x(0)), PhysName::Inline(42));
    }

    #[test]
    fn gvp_wide_prediction_writes_prf() {
        let mut r = renamer(VpMode::Gvp, false);
        let u = ldr(x(0), AddrMode::BaseDisp { base: x(1), disp: 0 });
        let out = r.rename_uop(&u, true, Some(0xDEAD_BEEF_0000)).unwrap();
        let (_, p) = out.dest_alloc.expect("wide prediction allocates");
        assert_eq!(out.predicted, Some((0xDEAD_BEEF_0000, PredApply::WidePrfWrite)));
        assert_eq!(r.file(RegClass::Int).ready_at(p), 0, "prediction ready immediately");
    }

    #[test]
    fn spsr_add_with_predicted_zero_operand() {
        let mut r = renamer(VpMode::Mvp, true);
        // x2 gets predicted to 0 (its producer).
        let producer = ldr(x(2), AddrMode::BaseDisp { base: x(1), disp: 0 });
        let _ = r.rename_uop(&producer, true, Some(0)).unwrap();
        // add x0, x3, x2 now SpSRs to a move of x3.
        let u = add(x(0), x(3), x(2));
        let out = r.rename_uop(&u, true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::Spsr));
        assert_eq!(r.name_of(x(0)), r.name_of(x(3)));
        assert_eq!(r.stats().spsr, 1);
    }

    #[test]
    fn spsr_ands_installs_frontend_flags_and_enables_csel() {
        let mut r = renamer(VpMode::Mvp, true);
        let producer = ldr(x(2), AddrMode::BaseDisp { base: x(1), disp: 0 });
        let _ = r.rename_uop(&producer, true, Some(0)).unwrap();
        // ands x0, x3, x2 → nop + NZCV = zero-result.
        let u = ands(x(0), x(3), x(2));
        let out = r.rename_uop(&u, true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::Spsr));
        assert_eq!(r.frontend_flags(), Some(Nzcv::ZERO_RESULT));
        // csel x4, x5, x6, eq — condition known true → move of x5.
        let u = csel(x(4), x(5), x(6), Cond::Eq);
        let out = r.rename_uop(&u, true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::Spsr));
        assert_eq!(r.name_of(x(4)), r.name_of(x(5)));
        // A non-reduced flag writer invalidates the frontend view.
        let u = subs(x(7), x(8), x(9));
        let _ = r.rename_uop(&u, true, None).unwrap();
        assert_eq!(r.frontend_flags(), None);
    }

    #[test]
    fn spsr_resolves_branches_on_known_values() {
        let mut r = renamer(VpMode::Mvp, true);
        let producer = ldr(x(2), AddrMode::BaseDisp { base: x(1), disp: 0 });
        let _ = r.rename_uop(&producer, true, Some(0)).unwrap();
        let mut cbz_u = Inst::new(Op::Cbz);
        cbz_u.src1 = Some(x(2));
        cbz_u.target = Some(0x40);
        let out = r.rename_uop(&cbz_u, true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::Spsr));
        assert_eq!(out.resolved_branch, Some(true));
    }

    #[test]
    fn mvp_cannot_spsr_nine_bit_values() {
        // MVP has no inlining: a KnownValue of 5 is unrepresentable.
        let mut r = renamer(VpMode::Mvp, true);
        let producer = ldr(x(2), AddrMode::BaseDisp { base: x(1), disp: 0 });
        let _ = r.rename_uop(&producer, true, Some(1)).unwrap();
        // add x0, x2, #4 → result 5 → cannot be named in MVP.
        let u = add(x(0), x(2), 4i64);
        let out = r.rename_uop(&u, true, None).unwrap();
        assert!(out.eliminated.is_none());
        // Under TVP the same pattern inlines.
        let mut r = renamer(VpMode::Tvp, true);
        let _ = r.rename_uop(&producer, true, Some(1)).unwrap();
        let out = r.rename_uop(&u, true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::Spsr));
        assert_eq!(r.name_of(x(0)), PhysName::Inline(5));
    }

    #[test]
    fn rollback_restores_mappings_and_frees() {
        let mut r = renamer(VpMode::Off, false);
        let before = r.name_of(x(0));
        let free_before = r.file(RegClass::Int).free_count();
        let out = r.rename_uop(&add(x(0), x(1), x(2)), true, None).unwrap();
        assert_eq!(r.file(RegClass::Int).free_count(), free_before - 1);
        r.rollback(&out);
        assert_eq!(r.name_of(x(0)), before);
        assert_eq!(r.file(RegClass::Int).free_count(), free_before);
    }

    #[test]
    fn rollback_of_move_elim_drops_reference() {
        let mut r = renamer(VpMode::Off, false);
        let p = r.name_of(x(5)).reg().unwrap();
        let rc = r.file(RegClass::Int).ref_count(p);
        let out = r.rename_uop(&mov(x(6), x(5)), true, None).unwrap();
        assert_eq!(r.file(RegClass::Int).ref_count(p), rc + 1);
        r.rollback(&out);
        assert_eq!(r.file(RegClass::Int).ref_count(p), rc);
    }

    #[test]
    fn commit_releases_previous_crat_mapping() {
        let mut r = renamer(VpMode::Off, false);
        let old = r.crat_entry(x(0).dense_index());
        let out = r.rename_uop(&add(x(0), x(1), x(2)), true, None).unwrap();
        let new_name = r.name_of(x(0));
        let old_p = old.reg().unwrap();
        let rc = r.file(RegClass::Int).ref_count(old_p);
        let names: Vec<(usize, PhysName)> = out.undo.iter().map(|&(d, _)| (d, new_name)).collect();
        r.commit_with_names(&names);
        assert_eq!(r.crat_entry(x(0).dense_index()), new_name);
        assert_eq!(r.file(RegClass::Int).ref_count(old_p), rc - 1);
    }

    #[test]
    fn rename_stall_when_out_of_registers() {
        let mut cfg = CoreConfig::table2();
        cfg.int_regs = 36; // 2 hardwired + 32 initial + 2 spare
        let mut r = Renamer::new(&cfg);
        assert!(r.rename_uop(&add(x(0), x(1), x(2)), true, None).is_ok());
        assert!(r.rename_uop(&add(x(3), x(1), x(2)), true, None).is_ok());
        assert!(r.rename_uop(&add(x(4), x(1), x(2)), true, None).is_err(), "free list exhausted");
        // Eliminations still succeed without registers.
        let out = r.rename_uop(&movz(x(5), 0), true, None).unwrap();
        assert_eq!(out.eliminated, Some(ElimCategory::ZeroIdiom));
    }

    #[test]
    fn xzr_destination_allocates_nothing() {
        let mut r = renamer(VpMode::Off, false);
        let free = r.file(RegClass::Int).free_count();
        // cmp = subs xzr, …: allocates only the flags register.
        let out = r.rename_uop(&cmp(x(1), x(2)), true, None).unwrap();
        assert!(out.dest_alloc.is_none());
        assert!(out.flags_alloc.is_some());
        assert_eq!(r.file(RegClass::Int).free_count(), free - 1);
    }
}
