//! Core configuration (paper Table 2) and the VP/SpSR feature matrix.

use tvp_isa::op::ExecClass;
use tvp_mem::hierarchy::HierarchyConfig;
use tvp_predictors::tage::TageConfig;
use tvp_predictors::vtage::{PredMode, VtageConfig};

/// How value mispredictions are repaired (paper §2.2 / §3.4).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum RecoveryPolicy {
    /// Full pipeline flush — the paper's chosen scheme (§3.4). Always
    /// used for MVP/TVP predictions, which have no physical register
    /// to repair.
    #[default]
    Flush,
    /// Selective replay of the mispredicted value's consumers, for
    /// GVP wide predictions only (they own a physical register that
    /// can be overwritten in place). MVP/TVP predictions still flush.
    /// The paper discusses this as the lower-cost-but-complex
    /// alternative, including the "replay tornado" hazard [Kim &
    /// Lipasti 2004], which the silencing window also guards here.
    Replay,
}

/// Which value-prediction flavour the core runs (paper §6.1).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum VpMode {
    /// No value prediction (the baseline still performs move and
    /// 0/1-idiom elimination).
    #[default]
    Off,
    /// Minimal VP: predict only `0x0`/`0x1`, written through the
    /// hardwired zero/one physical registers.
    Mvp,
    /// Targeted VP: predict 9-bit signed values through physical
    /// register inlining (widened names). Implies 9-bit idiom
    /// elimination.
    Tvp,
    /// Generic VP: predict arbitrary 64-bit values; narrow values use
    /// inlining, wide values are written to the PRF at rename.
    Gvp,
}

impl VpMode {
    /// The matching predictor width mode, if VP is enabled.
    #[must_use]
    pub fn pred_mode(self) -> Option<PredMode> {
        match self {
            VpMode::Off => None,
            VpMode::Mvp => Some(PredMode::ZeroOne),
            VpMode::Tvp => Some(PredMode::Narrow9),
            VpMode::Gvp => Some(PredMode::Full64),
        }
    }

    /// Whether this mode uses widened (value-inlining) register names.
    #[must_use]
    pub fn uses_inlining(self) -> bool {
        matches!(self, VpMode::Tvp | VpMode::Gvp)
    }
}

/// Full core configuration. [`CoreConfig::table2`] reproduces the
/// paper's machine.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Instructions fetched per cycle from the line buffer.
    pub fetch_width: usize,
    /// Fetch queue capacity (µops).
    pub fetch_queue: usize,
    /// Decode width — we fold decode into the fetch→rename delay.
    pub decode_width: usize,
    /// Rename width (µops per cycle).
    pub rename_width: usize,
    /// Maximum µops issued per cycle across all ports.
    pub issue_width: usize,
    /// Commit width (µops per cycle).
    pub commit_width: usize,
    /// Fetch-to-decode latency in cycles.
    pub fetch_to_decode: u64,
    /// Decode-to-rename latency in cycles.
    pub decode_to_rename: u64,
    /// Rename-to-dispatch latency in cycles.
    pub rename_to_dispatch: u64,
    /// Extra cycles of taken-branch fetch bubble.
    pub taken_branch_penalty: u64,
    /// Front-end refill penalty after a pipeline flush or branch
    /// misprediction redirect.
    pub redirect_penalty: u64,
    /// Decode-stage redirect penalty for a taken branch missing the BTB.
    pub btb_miss_penalty: u64,
    /// Reorder buffer capacity (µops).
    pub rob_size: usize,
    /// Unified instruction queue (scheduler) capacity.
    pub iq_size: usize,
    /// Load queue capacity.
    pub lq_size: usize,
    /// Store queue capacity.
    pub sq_size: usize,
    /// Integer physical registers.
    pub int_regs: usize,
    /// FP/SIMD physical registers.
    pub fp_regs: usize,
    /// Move elimination (baseline DSR).
    pub move_elim: bool,
    /// Zero/one-idiom elimination (baseline DSR).
    pub zero_one_idiom: bool,
    /// 9-bit signed move-immediate idiom elimination (requires
    /// inlining; automatically active under TVP/GVP).
    pub nine_bit_idiom: bool,
    /// Value prediction flavour.
    pub vp: VpMode,
    /// Override for the value predictor geometry (defaults to the
    /// paper's VTAGE at the mode's width).
    pub vtage: Option<VtageConfig>,
    /// Speculative Strength Reduction.
    pub spsr: bool,
    /// Predictor silencing window after a value misprediction, in
    /// cycles (paper §3.4.1: 250).
    pub silence_cycles: u64,
    /// Value-misprediction recovery scheme (GVP wide predictions
    /// only; see [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
    /// Extension (paper §3.4.1 future work): adapt the silencing
    /// window dynamically — double it on clustered mispredictions (up
    /// to 16× the base), halve it after quiet periods. The paper notes
    /// "the optimal silencing amount varies with pipeline geometry and
    /// benchmark, and a dynamic scheme would likely be beneficial".
    pub adaptive_silencing: bool,
    /// Branch predictor geometry.
    pub tage: TageConfig,
    /// Memory hierarchy geometry.
    pub mem: HierarchyConfig,
    /// Run the invariant auditors every this many cycles (0 disables
    /// periodic audits; an end-of-run audit still happens). Only
    /// effective when the crate is built with the `verif` feature.
    pub audit_every: u64,
    /// Deterministic fault-injection campaign (`None` = no chaos).
    pub chaos: Option<tvp_chaos::ChaosConfig>,
    /// Deadlock watchdog: trip after this many cycles without a commit
    /// (0 disables the watchdog entirely).
    pub watchdog_cycles: u64,
    /// Runtime kill-switch: never *use* value predictions, even when
    /// the predictor is confident (training continues).
    pub vp_kill_switch: bool,
    /// Runtime kill-switch: disable speculative strength reduction
    /// even when [`CoreConfig::spsr`] is set.
    pub spsr_kill_switch: bool,
    /// Auto-throttle: temporarily disable VP/SpSR when value
    /// mispredictions storm (graceful degradation).
    pub auto_throttle: bool,
    /// Auto-throttle evaluation window, in cycles.
    pub throttle_window: u64,
    /// Mispredictions-per-window score at which the throttle engages
    /// (it disengages below half this threshold).
    pub throttle_threshold: u64,
}

impl CoreConfig {
    /// The paper's Table 2 machine: 11-stage, 8-wide, 315-entry ROB.
    #[must_use]
    pub fn table2() -> Self {
        CoreConfig {
            fetch_width: 16,
            fetch_queue: 32,
            decode_width: 8,
            rename_width: 8,
            issue_width: 15,
            commit_width: 8,
            fetch_to_decode: 3,
            decode_to_rename: 1,
            rename_to_dispatch: 2,
            taken_branch_penalty: 1,
            redirect_penalty: 2,
            btb_miss_penalty: 3,
            rob_size: 315,
            iq_size: 92,
            lq_size: 74,
            sq_size: 53,
            int_regs: 292,
            fp_regs: 292,
            move_elim: true,
            zero_one_idiom: true,
            nine_bit_idiom: false,
            vp: VpMode::Off,
            vtage: None,
            spsr: false,
            silence_cycles: 250,
            recovery: RecoveryPolicy::Flush,
            adaptive_silencing: false,
            tage: TageConfig::default(),
            mem: HierarchyConfig::default(),
            audit_every: 1_000,
            chaos: None,
            watchdog_cycles: 1_000_000,
            vp_kill_switch: false,
            spsr_kill_switch: false,
            auto_throttle: false,
            throttle_window: 512,
            throttle_threshold: 8,
        }
    }

    /// Table 2 with a VP flavour enabled (TVP/GVP imply 9-bit idiom
    /// elimination, as in §6.1).
    #[must_use]
    pub fn with_vp(vp: VpMode) -> Self {
        let mut cfg = Self::table2();
        cfg.vp = vp;
        cfg.nine_bit_idiom = vp.uses_inlining();
        cfg
    }

    /// Adds SpSR on top of the current configuration.
    #[must_use]
    pub fn with_spsr(mut self) -> Self {
        self.spsr = true;
        self
    }

    /// Arms a deterministic fault-injection campaign.
    #[must_use]
    pub fn with_chaos(mut self, chaos: tvp_chaos::ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The effective value predictor geometry (explicit override or
    /// the paper's geometry at the mode's width).
    #[must_use]
    pub fn effective_vtage(&self) -> Option<VtageConfig> {
        let mode = self.vp.pred_mode()?;
        Some(self.vtage.clone().unwrap_or_else(|| VtageConfig::paper(mode)))
    }

    /// Execution latency of a class (Table 2 "Issue" row).
    #[must_use]
    pub fn latency(&self, class: ExecClass) -> u64 {
        match class {
            ExecClass::IntAlu | ExecClass::Branch | ExecClass::Nop => 1,
            ExecClass::IntMul => 3,
            ExecClass::IntDiv => 20,
            ExecClass::FpAlu => 3,
            ExecClass::FpMul => 4,
            ExecClass::FpMac => 5,
            ExecClass::FpDiv => 12,
            // Loads: 1-cycle AGU; cache latency added separately.
            ExecClass::Load | ExecClass::Store => 1,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// Per-cycle functional unit pools (Table 2 "Issue" row).
#[derive(Clone, Debug)]
pub struct FuPool {
    /// ALU-capable units: 4 simple + 2 mul-combo = 6.
    pub int_alu: usize,
    /// Integer multiply pipes.
    pub int_mul: usize,
    /// Integer divide units (not pipelined).
    pub int_div: usize,
    /// FP-capable units: 3 combo + 1 div-combo = 4.
    pub fp_alu: usize,
    /// FP multiply/mac pipes.
    pub fp_mul: usize,
    /// FP divide units (not pipelined).
    pub fp_div: usize,
    /// Load ports.
    pub load: usize,
    /// Store ports.
    pub store: usize,
}

impl Default for FuPool {
    fn default() -> Self {
        FuPool {
            int_alu: 6,
            int_mul: 2,
            int_div: 1,
            fp_alu: 4,
            fp_mul: 4,
            fp_div: 1,
            load: 2,
            store: 2,
        }
    }
}

impl FuPool {
    /// Units of the pool a class draws from.
    #[must_use]
    pub fn capacity(&self, class: ExecClass) -> usize {
        match class {
            ExecClass::IntAlu | ExecClass::Branch | ExecClass::Nop => self.int_alu,
            ExecClass::IntMul => self.int_mul,
            ExecClass::IntDiv => self.int_div,
            ExecClass::FpAlu => self.fp_alu,
            ExecClass::FpMul | ExecClass::FpMac => self.fp_mul,
            ExecClass::FpDiv => self.fp_div,
            ExecClass::Load => self.load,
            ExecClass::Store => self.store,
        }
    }

    /// Whether the class's unit is occupied for the whole operation
    /// (non-pipelined divides).
    #[must_use]
    pub fn unpipelined(class: ExecClass) -> bool {
        matches!(class, ExecClass::IntDiv | ExecClass::FpDiv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = CoreConfig::table2();
        assert_eq!(c.rob_size, 315);
        assert_eq!(c.iq_size, 92);
        assert_eq!(c.lq_size, 74);
        assert_eq!(c.sq_size, 53);
        assert_eq!(c.int_regs, 292);
        assert_eq!(c.fp_regs, 292);
        assert_eq!(c.rename_width, 8);
        assert_eq!(c.issue_width, 15);
        assert_eq!(c.silence_cycles, 250);
        assert!(c.move_elim && c.zero_one_idiom);
        assert!(!c.nine_bit_idiom && !c.spsr);
        assert_eq!(c.vp, VpMode::Off);
    }

    #[test]
    fn chaos_and_degradation_default_off() {
        let c = CoreConfig::table2();
        assert!(c.chaos.is_none());
        assert_eq!(c.watchdog_cycles, 1_000_000);
        assert!(!c.vp_kill_switch && !c.spsr_kill_switch && !c.auto_throttle);
        let armed = CoreConfig::table2().with_chaos(tvp_chaos::ChaosConfig::campaign(42));
        assert_eq!(armed.chaos.map(|ch| ch.seed), Some(42));
    }

    #[test]
    fn vp_modes_imply_inlining() {
        assert!(!CoreConfig::with_vp(VpMode::Mvp).nine_bit_idiom);
        assert!(CoreConfig::with_vp(VpMode::Tvp).nine_bit_idiom);
        assert!(CoreConfig::with_vp(VpMode::Gvp).nine_bit_idiom);
        assert!(CoreConfig::with_vp(VpMode::Off).effective_vtage().is_none());
        assert!(CoreConfig::with_vp(VpMode::Tvp).effective_vtage().is_some());
    }

    #[test]
    fn latencies_match_table2() {
        let c = CoreConfig::table2();
        assert_eq!(c.latency(ExecClass::IntAlu), 1);
        assert_eq!(c.latency(ExecClass::IntMul), 3);
        assert_eq!(c.latency(ExecClass::IntDiv), 20);
        assert_eq!(c.latency(ExecClass::FpAlu), 3);
        assert_eq!(c.latency(ExecClass::FpMul), 4);
        assert_eq!(c.latency(ExecClass::FpMac), 5);
        assert_eq!(c.latency(ExecClass::FpDiv), 12);
    }

    #[test]
    fn fu_pool_matches_table2() {
        let p = FuPool::default();
        assert_eq!(p.int_alu, 6, "4 simple + 2 mul-combo ALUs");
        assert_eq!(p.int_mul, 2);
        assert_eq!(p.int_div, 1);
        assert_eq!(p.fp_alu, 4);
        assert_eq!(p.load, 2);
        assert_eq!(p.store, 2);
        assert!(FuPool::unpipelined(ExecClass::IntDiv));
        assert!(!FuPool::unpipelined(ExecClass::IntMul));
        // Total issue bandwidth: 6 + 1 + 4 + 2 + 2 = 15.
        assert_eq!(p.int_alu + p.int_div + p.fp_alu + p.load + p.store, 15);
    }
}
