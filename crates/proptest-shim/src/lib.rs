//! # proptest (shim) — deterministic property-testing stand-in
//!
//! The build environment has no network access to crates.io, so the
//! real `proptest` crate (and its proc-macro dependency chain) cannot
//! be vendored. This crate implements the small subset of its API that
//! the workspace's property tests use, with the same surface syntax:
//!
//! - the [`proptest!`] macro with `#![proptest_config(...)]`, typed
//!   arguments (`a: u64`) and strategy arguments (`x in 0u8..16`),
//! - [`Strategy`] with [`Strategy::prop_map`], integer/float ranges,
//!   strategy tuples, [`collection::vec`], [`any`] and [`prop_oneof!`],
//! - the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Unlike the real crate there is **no shrinking** and generation is
//! fully deterministic: each test derives its RNG seed from its own
//! name, so failures reproduce exactly across runs and machines (the
//! same discipline the simulator itself follows — see `xtask lint`'s
//! nondeterminism rules).

/// Per-test configuration. Only the field the workspace uses.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 48 keeps the simulator-heavy
        // properties fast while still sweeping a useful input range.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic splitmix64 generator used by all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Creates a generator seeded from a test name (FNV-1a).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty strategy range");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of generated values — the shim's `Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (as in real proptest).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (real proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty strategy range");
                let span = (hi - lo) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::cast_lossless, clippy::range_minus_one)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo + 1) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    #[allow(clippy::cast_precision_loss)]
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// Uniform choice between boxed alternative strategies — the engine
/// behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

/// One boxed alternative of a [`Union`].
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

impl<T> Union<T> {
    /// Builds a union from pre-boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one strategy into a union arm.
    pub fn arm<S>(strategy: S) -> UnionArm<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(move |rng| strategy.generate(rng))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    #[allow(clippy::cast_possible_truncation)]
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for vectors of `element` values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::arm($arm)),+])
    };
}

/// Defines property tests: each `fn` runs `cases` times over generated
/// inputs. Supports `name: Type` (via [`Arbitrary`]) and
/// `name in strategy` argument forms, in any mix.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test fn in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                $crate::__proptest_bind! { __rng, $($args)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal: binds one [`proptest!`] argument list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let f = (0.25f64..4.0).generate(&mut rng);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = collection::vec(any::<bool>(), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_visits_every_arm() {
        let s = prop_oneof![(0u64..1).prop_map(|_| 1u64), (0u64..1).prop_map(|_| 2u64)];
        let mut rng = TestRng::new(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_mixed_args(a: u64, b in 0u8..4, v in collection::vec(0i64..10, 1..4)) {
            let _ = a;
            prop_assert!(b < 4);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_ne!(v.len(), 9);
        }
    }
}
