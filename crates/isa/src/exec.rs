//! Functional (architectural) semantics of every non-memory,
//! non-branch micro-op.
//!
//! The functional machine in `tvp-workloads` uses [`exec_alu`] to compute
//! trace values; the timing core reuses the same function inside unit
//! tests to cross-check trace results, guaranteeing a single source of
//! truth for semantics.

use crate::flags::{Cond, Nzcv};
use crate::op::{Op, Width};

/// Operand bundle for [`exec_alu`]. Register operands are pre-read;
/// immediate second operands are materialised into `b`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Operands {
    /// First source value.
    pub a: u64,
    /// Second source value (register or immediate).
    pub b: u64,
    /// Third source value (`madd`/`msub`/`fmadd` addend).
    pub c: u64,
    /// Incoming condition flags.
    pub flags: Nzcv,
}

/// Result of functional execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AluResult {
    /// The destination value (zero-extended for 32-bit operations).
    pub value: u64,
    /// New condition flags, for flag-setting operations.
    pub flags: Option<Nzcv>,
}

impl AluResult {
    fn plain(value: u64) -> Self {
        AluResult { value, flags: None }
    }
}

fn add_with_flags(a: u64, b: u64, width: Width) -> (u64, Nzcv) {
    match width {
        Width::W64 => {
            let (r, carry) = a.overflowing_add(b);
            let v = ((a ^ r) & (b ^ r)) >> 63 == 1;
            (r, Nzcv::from_result(r, carry, v))
        }
        Width::W32 => {
            let (a, b) = (a as u32, b as u32);
            let (r, carry) = a.overflowing_add(b);
            let v = ((a ^ r) & (b ^ r)) >> 31 == 1;
            (u64::from(r), Nzcv::from_result32(r, carry, v))
        }
    }
}

fn sub_with_flags(a: u64, b: u64, width: Width) -> (u64, Nzcv) {
    match width {
        Width::W64 => {
            let r = a.wrapping_sub(b);
            let carry = a >= b; // "no borrow"
            let v = ((a ^ b) & (a ^ r)) >> 63 == 1;
            (r, Nzcv::from_result(r, carry, v))
        }
        Width::W32 => {
            let (a, b) = (a as u32, b as u32);
            let r = a.wrapping_sub(b);
            let carry = a >= b;
            let v = ((a ^ b) & (a ^ r)) >> 31 == 1;
            (u64::from(r), Nzcv::from_result32(r, carry, v))
        }
    }
}

fn logic_flags(r: u64, width: Width) -> Nzcv {
    match width {
        Width::W64 => Nzcv::from_result(r, false, false),
        Width::W32 => Nzcv::from_result32(r as u32, false, false),
    }
}

fn narrow(v: u64, width: Width) -> u64 {
    v & width.mask()
}

fn fcmp_flags(a: f64, b: f64) -> Nzcv {
    if a.is_nan() || b.is_nan() {
        Nzcv { n: false, z: false, c: true, v: true }
    } else if a < b {
        Nzcv { n: true, z: false, c: false, v: false }
    } else if a == b {
        Nzcv { n: false, z: true, c: true, v: false }
    } else {
        Nzcv { n: false, z: false, c: true, v: false }
    }
}

/// Executes a non-memory, non-branch micro-op functionally.
///
/// `sets_flags` requests the flag-setting variant (`adds`/`subs`/`ands`);
/// it is ignored for operations that cannot set flags, except `fcmp`
/// which always sets them.
///
/// # Panics
///
/// Panics if called with a memory or branch operation — those are
/// executed by the machine, which owns memory and control flow.
///
/// # Examples
///
/// ```
/// use tvp_isa::exec::{exec_alu, Operands};
/// use tvp_isa::op::{Op, Width};
///
/// let r = exec_alu(Op::Add, Width::W64, true, Operands { a: 1, b: u64::MAX, ..Default::default() });
/// assert_eq!(r.value, 0);
/// assert!(r.flags.unwrap().z && r.flags.unwrap().c);
/// ```
#[must_use]
pub fn exec_alu(op: Op, width: Width, sets_flags: bool, ops: Operands) -> AluResult {
    let Operands { a, b, c, flags } = ops;
    let (a_n, b_n) = (narrow(a, width), narrow(b, width));
    match op {
        Op::Add => {
            let (r, f) = add_with_flags(a_n, b_n, width);
            AluResult { value: narrow(r, width), flags: sets_flags.then_some(f) }
        }
        Op::Sub => {
            let (r, f) = sub_with_flags(a_n, b_n, width);
            AluResult { value: narrow(r, width), flags: sets_flags.then_some(f) }
        }
        Op::And => {
            let r = narrow(a_n & b_n, width);
            AluResult { value: r, flags: sets_flags.then(|| logic_flags(r, width)) }
        }
        Op::Orr => AluResult::plain(narrow(a_n | b_n, width)),
        Op::Eor => AluResult::plain(narrow(a_n ^ b_n, width)),
        Op::Bic => {
            let r = narrow(a_n & !b_n, width);
            AluResult { value: r, flags: sets_flags.then(|| logic_flags(r, width)) }
        }
        Op::Lsl => {
            let sh = (b & u64::from(width.bits() - 1)) as u32;
            AluResult::plain(narrow(a_n.wrapping_shl(sh), width))
        }
        Op::Lsr => {
            let sh = (b & u64::from(width.bits() - 1)) as u32;
            AluResult::plain(narrow(a_n.wrapping_shr(sh), width))
        }
        Op::Asr => {
            let sh = (b & u64::from(width.bits() - 1)) as u32;
            let r = match width {
                Width::W64 => (a_n as i64).wrapping_shr(sh) as u64,
                Width::W32 => u64::from(((a_n as u32) as i32).wrapping_shr(sh) as u32),
            };
            AluResult::plain(narrow(r, width))
        }
        Op::Ror => {
            let sh = (b & u64::from(width.bits() - 1)) as u32;
            let r = match width {
                Width::W64 => a_n.rotate_right(sh),
                Width::W32 => u64::from((a_n as u32).rotate_right(sh)),
            };
            AluResult::plain(r)
        }
        Op::Rbit => {
            let r = match width {
                Width::W64 => a_n.reverse_bits(),
                Width::W32 => u64::from((a_n as u32).reverse_bits()),
            };
            AluResult::plain(r)
        }
        Op::Clz => {
            let r = match width {
                Width::W64 => u64::from(a_n.leading_zeros()),
                Width::W32 => u64::from((a_n as u32).leading_zeros()),
            };
            AluResult::plain(r)
        }
        Op::Ubfx { lsb, width: w } => {
            let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            AluResult::plain((a >> lsb) & mask)
        }
        Op::Sbfx { lsb, width: w } => {
            let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            let field = (a >> lsb) & mask;
            let sign = 1u64 << (w - 1);
            let r = if field & sign != 0 { field | !mask } else { field };
            AluResult::plain(narrow(r, width))
        }
        Op::MovImm => AluResult::plain(narrow(b, width)),
        Op::Mov => AluResult::plain(narrow(a, width)),
        Op::Csel(cond) => AluResult::plain(narrow(if cond.eval(flags) { a_n } else { b_n }, width)),
        Op::Csinc(cond) => AluResult::plain(narrow(
            if cond.eval(flags) { a_n } else { b_n.wrapping_add(1) },
            width,
        )),
        Op::Csneg(cond) => {
            AluResult::plain(narrow(if cond.eval(flags) { a_n } else { b_n.wrapping_neg() }, width))
        }
        Op::Csinv(cond) => {
            AluResult::plain(narrow(if cond.eval(flags) { a_n } else { !b_n }, width))
        }
        Op::Mul => AluResult::plain(narrow(a_n.wrapping_mul(b_n), width)),
        Op::Madd => {
            AluResult::plain(narrow(narrow(c, width).wrapping_add(a_n.wrapping_mul(b_n)), width))
        }
        Op::Msub => {
            AluResult::plain(narrow(narrow(c, width).wrapping_sub(a_n.wrapping_mul(b_n)), width))
        }
        Op::Udiv => {
            let r = match width {
                Width::W64 => a_n.checked_div(b_n).unwrap_or(0),
                Width::W32 => u64::from((a_n as u32).checked_div(b_n as u32).unwrap_or(0)),
            };
            AluResult::plain(r)
        }
        Op::Sdiv => {
            let r = match width {
                Width::W64 => {
                    let (a, b) = (a_n as i64, b_n as i64);
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b) as u64
                    }
                }
                Width::W32 => {
                    let (a, b) = (a_n as u32 as i32, b_n as u32 as i32);
                    u64::from(if b == 0 { 0 } else { a.wrapping_div(b) } as u32)
                }
            };
            AluResult::plain(r)
        }
        Op::Fadd => AluResult::plain((f64::from_bits(a) + f64::from_bits(b)).to_bits()),
        Op::Fsub => AluResult::plain((f64::from_bits(a) - f64::from_bits(b)).to_bits()),
        Op::Fmul => AluResult::plain((f64::from_bits(a) * f64::from_bits(b)).to_bits()),
        Op::Fdiv => AluResult::plain((f64::from_bits(a) / f64::from_bits(b)).to_bits()),
        Op::Fmadd => AluResult::plain(
            f64::from_bits(a).mul_add(f64::from_bits(b), f64::from_bits(c)).to_bits(),
        ),
        Op::Fneg => AluResult::plain((-f64::from_bits(a)).to_bits()),
        Op::Fabs => AluResult::plain(f64::from_bits(a).abs().to_bits()),
        Op::Fsqrt => AluResult::plain(f64::from_bits(a).sqrt().to_bits()),
        Op::Fcmp => {
            AluResult { value: 0, flags: Some(fcmp_flags(f64::from_bits(a), f64::from_bits(b))) }
        }
        Op::Fmov | Op::FmovFromInt | Op::FmovToInt => AluResult::plain(a),
        Op::FcvtToInt => {
            let f = f64::from_bits(a);
            let r = if f.is_nan() {
                0i64
            } else if f >= i64::MAX as f64 {
                i64::MAX
            } else if f <= i64::MIN as f64 {
                i64::MIN
            } else {
                f as i64
            };
            AluResult::plain(r as u64)
        }
        Op::FcvtFromInt => AluResult::plain(((a as i64) as f64).to_bits()),
        Op::Nop => AluResult::plain(0),
        Op::Load { .. } | Op::Store { .. } => {
            panic!("memory op {op} must be executed by the machine")
        }
        Op::B
        | Op::Bl
        | Op::Br
        | Op::Blr
        | Op::Ret
        | Op::BCond(_)
        | Op::Cbz
        | Op::Cbnz
        | Op::Tbz(_)
        | Op::Tbnz(_) => panic!("branch {op} must be executed by the machine"),
    }
}

/// Decides whether a conditional branch is taken, given the evaluated
/// source value (for `cbz`/`cbnz`/`tbz`/`tbnz`) or flags (`b.cond`).
#[must_use]
pub fn branch_taken(op: Op, width: Width, src: u64, flags: Nzcv) -> bool {
    let src = src & width.mask();
    match op {
        Op::B | Op::Bl | Op::Br | Op::Blr | Op::Ret => true,
        Op::BCond(c) => c.eval(flags),
        Op::Cbz => src == 0,
        Op::Cbnz => src != 0,
        Op::Tbz(bit) => src & (1u64 << bit) == 0,
        Op::Tbnz(bit) => src & (1u64 << bit) != 0,
        _ => panic!("{op} is not a branch"),
    }
}

/// Evaluates a condition against flags (re-export of [`Cond::eval`] for
/// call sites that have an `Op`-independent condition).
#[must_use]
pub fn cond_holds(cond: Cond, flags: Nzcv) -> bool {
    cond.eval(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops(a: u64, b: u64) -> Operands {
        Operands { a, b, ..Default::default() }
    }

    #[test]
    fn add_sub_flags_64() {
        let r = exec_alu(Op::Add, Width::W64, true, ops(u64::MAX, 1));
        assert_eq!(r.value, 0);
        let f = r.flags.unwrap();
        assert!(f.z && f.c && !f.v && !f.n);

        let r = exec_alu(Op::Sub, Width::W64, true, ops(0, 1));
        assert_eq!(r.value, u64::MAX);
        let f = r.flags.unwrap();
        assert!(f.n && !f.z && !f.c && !f.v);

        // Signed overflow: i64::MAX + 1.
        let r = exec_alu(Op::Add, Width::W64, true, ops(i64::MAX as u64, 1));
        assert!(r.flags.unwrap().v);
    }

    #[test]
    fn w32_results_zero_extend() {
        let r = exec_alu(Op::Add, Width::W32, false, ops(0xFFFF_FFFF, 1));
        assert_eq!(r.value, 0);
        let r = exec_alu(Op::Sub, Width::W32, true, ops(0, 1));
        assert_eq!(r.value, 0xFFFF_FFFF);
        assert!(r.flags.unwrap().n);
        // High garbage in inputs is ignored.
        let r = exec_alu(Op::Add, Width::W32, false, ops(0xDEAD_0000_0000_0001, 2));
        assert_eq!(r.value, 3);
    }

    #[test]
    fn logic_and_shift_semantics() {
        assert_eq!(exec_alu(Op::And, Width::W64, false, ops(0b1100, 0b1010)).value, 0b1000);
        assert_eq!(exec_alu(Op::Bic, Width::W64, false, ops(0b1100, 0b1010)).value, 0b0100);
        assert_eq!(exec_alu(Op::Lsl, Width::W64, false, ops(1, 63)).value, 1 << 63);
        assert_eq!(exec_alu(Op::Lsr, Width::W64, false, ops(1 << 63, 63)).value, 1);
        assert_eq!(
            exec_alu(Op::Asr, Width::W64, false, ops(u64::MAX << 32, 16)).value,
            u64::MAX << 16
        );
        // Shift amounts wrap at the operand width.
        assert_eq!(exec_alu(Op::Lsl, Width::W32, false, ops(1, 33)).value, 2);
    }

    #[test]
    fn ands_zero_operand_gives_zero_result_flags() {
        // The SpSR frontend-NZCV case: ands with a zero operand.
        let r = exec_alu(Op::And, Width::W64, true, ops(0, 0xDEAD_BEEF));
        assert_eq!(r.value, 0);
        assert_eq!(r.flags.unwrap(), crate::flags::Nzcv::ZERO_RESULT);
    }

    #[test]
    fn bitfield_extract() {
        assert_eq!(
            exec_alu(Op::Ubfx { lsb: 8, width: 8 }, Width::W64, false, ops(0xAB_CD, 0)).value,
            0xAB
        );
        assert_eq!(
            exec_alu(Op::Sbfx { lsb: 0, width: 8 }, Width::W64, false, ops(0x80, 0)).value,
            u64::MAX << 8 | 0x80
        );
        assert_eq!(
            exec_alu(Op::Ubfx { lsb: 0, width: 64 }, Width::W64, false, ops(u64::MAX, 0)).value,
            u64::MAX
        );
    }

    #[test]
    fn conditional_selects() {
        let eq = Nzcv { z: true, ..Nzcv::default() };
        let ne = Nzcv::default();
        let mk = |flags| Operands { a: 10, b: 20, flags, ..Default::default() };
        assert_eq!(exec_alu(Op::Csel(Cond::Eq), Width::W64, false, mk(eq)).value, 10);
        assert_eq!(exec_alu(Op::Csel(Cond::Eq), Width::W64, false, mk(ne)).value, 20);
        assert_eq!(exec_alu(Op::Csinc(Cond::Eq), Width::W64, false, mk(ne)).value, 21);
        assert_eq!(
            exec_alu(Op::Csneg(Cond::Eq), Width::W64, false, mk(ne)).value,
            20u64.wrapping_neg()
        );
        assert_eq!(exec_alu(Op::Csinv(Cond::Eq), Width::W64, false, mk(ne)).value, !20u64);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        assert_eq!(exec_alu(Op::Udiv, Width::W64, false, ops(42, 0)).value, 0);
        assert_eq!(exec_alu(Op::Sdiv, Width::W64, false, ops(42, 0)).value, 0);
        // i64::MIN / -1 must not trap.
        let r = exec_alu(Op::Sdiv, Width::W64, false, ops(i64::MIN as u64, u64::MAX));
        assert_eq!(r.value, i64::MIN as u64);
    }

    #[test]
    fn madd_msub() {
        let o = Operands { a: 3, b: 4, c: 100, ..Default::default() };
        assert_eq!(exec_alu(Op::Madd, Width::W64, false, o).value, 112);
        assert_eq!(exec_alu(Op::Msub, Width::W64, false, o).value, 88);
    }

    #[test]
    fn fp_ops_roundtrip_through_bits() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(exec_alu(Op::Fadd, Width::W64, false, ops(a, b)).value), 3.75);
        assert_eq!(f64::from_bits(exec_alu(Op::Fmul, Width::W64, false, ops(a, b)).value), 3.375);
        let fm = exec_alu(
            Op::Fmadd,
            Width::W64,
            false,
            Operands { a, b, c: 1.0f64.to_bits(), ..Default::default() },
        );
        assert_eq!(f64::from_bits(fm.value), 4.375);
    }

    #[test]
    fn fcmp_flag_encoding() {
        let f = |a: f64, b: f64| {
            exec_alu(Op::Fcmp, Width::W64, true, ops(a.to_bits(), b.to_bits())).flags.unwrap()
        };
        assert!(f(1.0, 2.0).n);
        assert!(f(2.0, 2.0).z && f(2.0, 2.0).c);
        assert!(f(3.0, 2.0).c && !f(3.0, 2.0).z);
        let nan = f(f64::NAN, 2.0);
        assert!(nan.c && nan.v && !nan.z && !nan.n);
    }

    #[test]
    fn fcvt_saturates() {
        let big = 1e300f64.to_bits();
        assert_eq!(exec_alu(Op::FcvtToInt, Width::W64, false, ops(big, 0)).value, i64::MAX as u64);
        let nan = f64::NAN.to_bits();
        assert_eq!(exec_alu(Op::FcvtToInt, Width::W64, false, ops(nan, 0)).value, 0);
    }

    #[test]
    fn branch_taken_rules() {
        let f0 = Nzcv::default();
        assert!(branch_taken(Op::B, Width::W64, 0, f0));
        assert!(branch_taken(Op::Cbz, Width::W64, 0, f0));
        assert!(!branch_taken(Op::Cbz, Width::W64, 1, f0));
        assert!(branch_taken(Op::Cbnz, Width::W64, 7, f0));
        assert!(branch_taken(Op::Tbz(3), Width::W64, 0b0111, f0));
        assert!(branch_taken(Op::Tbnz(2), Width::W64, 0b0100, f0));
        // W32 branches ignore high bits.
        assert!(branch_taken(Op::Cbz, Width::W32, 0xFFFF_FFFF_0000_0000, f0));
        let z = Nzcv { z: true, ..Nzcv::default() };
        assert!(branch_taken(Op::BCond(Cond::Eq), Width::W64, 0, z));
        assert!(!branch_taken(Op::BCond(Cond::Ne), Width::W64, 0, z));
    }

    #[test]
    #[should_panic(expected = "must be executed by the machine")]
    fn loads_are_rejected() {
        let _ = exec_alu(Op::Load { size: 8, signed: false }, Width::W64, false, ops(0, 0));
    }
}
