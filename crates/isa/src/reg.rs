//! Architectural register identifiers.
//!
//! The machine models an ARMv8-like register file: 31 general purpose
//! integer registers (`x0`–`x30`), a hardwired zero register (`xzr`,
//! encoded as integer register 31), 32 floating-point/SIMD registers
//! (`v0`–`v31`) and the `NZCV` condition-flags register.
//!
//! Only *integer* register producers are eligible for value prediction
//! (paper §6.1), which is why [`Reg::is_gpr`] exists as a first-class
//! query.

use std::fmt;

/// Number of addressable integer registers including the zero register.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point/SIMD registers.
pub const NUM_FP_REGS: u8 = 32;
/// Encoding of the hardwired zero register within the integer class.
pub const ZERO_REG_INDEX: u8 = 31;

/// An architectural register name.
///
/// # Examples
///
/// ```
/// use tvp_isa::reg::{Reg, XZR};
///
/// let dst = Reg::int(0);
/// assert!(dst.is_gpr());
/// assert!(!XZR.is_gpr()); // writes to xzr are discarded
/// assert_eq!(dst.to_string(), "x0");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Reg {
    /// Integer register `x0`–`x30`, or `xzr` for index 31.
    Int(u8),
    /// Floating-point / SIMD register `v0`–`v31`.
    Fp(u8),
    /// The condition-flags register (negative, zero, carry, overflow).
    Nzcv,
}

/// The hardwired zero register (`xzr`). Reads return `0x0`; writes are
/// discarded.
pub const XZR: Reg = Reg::Int(ZERO_REG_INDEX);

impl Reg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn int(index: u8) -> Self {
        assert!(index < NUM_INT_REGS, "integer register index out of range: {index}");
        Reg::Int(index)
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn fp(index: u8) -> Self {
        assert!(index < NUM_FP_REGS, "fp register index out of range: {index}");
        Reg::Fp(index)
    }

    /// Returns `true` for a *writable* general-purpose integer register,
    /// i.e. any integer register except the hardwired zero register.
    ///
    /// This is the value-prediction eligibility class of the paper: only
    /// instructions producing one or more general purpose registers are
    /// candidates for VP.
    #[must_use]
    pub fn is_gpr(self) -> bool {
        matches!(self, Reg::Int(i) if i != ZERO_REG_INDEX)
    }

    /// Returns `true` if this is the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == XZR
    }

    /// Returns `true` for any integer-class register, including `xzr`.
    #[must_use]
    pub fn is_int(self) -> bool {
        matches!(self, Reg::Int(_))
    }

    /// Returns `true` for a floating-point register.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, Reg::Fp(_))
    }

    /// Returns `true` for the condition-flags register.
    #[must_use]
    pub fn is_flags(self) -> bool {
        self == Reg::Nzcv
    }

    /// A dense index suitable for architectural register-file arrays:
    /// integer registers map to `0..32`, FP registers to `32..64` and
    /// `NZCV` to `64`.
    #[must_use]
    pub fn dense_index(self) -> usize {
        match self {
            Reg::Int(i) => usize::from(i),
            Reg::Fp(i) => usize::from(NUM_INT_REGS) + usize::from(i),
            Reg::Nzcv => usize::from(NUM_INT_REGS) + usize::from(NUM_FP_REGS),
        }
    }
}

/// Total number of dense architectural register slots (see
/// [`Reg::dense_index`]).
pub const NUM_DENSE_REGS: usize = NUM_INT_REGS as usize + NUM_FP_REGS as usize + 1;

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(ZERO_REG_INDEX) => write!(f, "xzr"),
            Reg::Int(i) => write!(f, "x{i}"),
            Reg::Fp(i) => write!(f, "v{i}"),
            Reg::Nzcv => write!(f, "nzcv"),
        }
    }
}

/// Shorthand constructor for integer registers, mirroring assembly syntax.
///
/// # Panics
///
/// Panics if `index >= 32`.
#[must_use]
pub fn x(index: u8) -> Reg {
    Reg::int(index)
}

/// Shorthand constructor for floating-point registers.
///
/// # Panics
///
/// Panics if `index >= 32`.
#[must_use]
pub fn v(index: u8) -> Reg {
    Reg::fp(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_not_gpr() {
        assert!(!XZR.is_gpr());
        assert!(XZR.is_zero());
        assert!(XZR.is_int());
    }

    #[test]
    fn gpr_classification() {
        for i in 0..31 {
            assert!(Reg::int(i).is_gpr(), "x{i} must be a GPR");
        }
        for i in 0..32 {
            assert!(!Reg::fp(i).is_gpr());
        }
        assert!(!Reg::Nzcv.is_gpr());
    }

    #[test]
    fn dense_indices_are_unique_and_bounded() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..NUM_INT_REGS {
            assert!(seen.insert(Reg::Int(i).dense_index()));
        }
        for i in 0..NUM_FP_REGS {
            assert!(seen.insert(Reg::Fp(i).dense_index()));
        }
        assert!(seen.insert(Reg::Nzcv.dense_index()));
        assert!(seen.iter().all(|&i| i < NUM_DENSE_REGS));
        assert_eq!(seen.len(), NUM_DENSE_REGS);
    }

    #[test]
    fn display_matches_assembly_syntax() {
        assert_eq!(x(5).to_string(), "x5");
        assert_eq!(v(12).to_string(), "v12");
        assert_eq!(XZR.to_string(), "xzr");
        assert_eq!(Reg::Nzcv.to_string(), "nzcv");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_constructor_validates() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_constructor_validates() {
        let _ = Reg::fp(32);
    }
}
