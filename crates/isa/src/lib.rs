//! # tvp-isa — ARMv8-like micro-op ISA for the TVP/SpSR simulator
//!
//! This crate defines the architectural state and instruction set shared
//! by every other crate in the workspace:
//!
//! * [`reg`] — register names (31 GPRs, `xzr`, 32 FP registers, `NZCV`);
//! * [`flags`] — condition flags and condition codes;
//! * [`op`] — micro-operation kinds and their static properties
//!   (execution class, branch kind, flag behaviour);
//! * [`inst`] — architectural instructions, builders and µop expansion;
//! * [`exec`] — functional semantics (single source of truth used both
//!   to generate traces and to validate the timing model).
//!
//! The subset mirrors what the paper's evaluation exercises: the
//! integer/logic operations of SpSR Table 1 (`add`, `sub`, `and`, `orr`,
//! `eor`, `bic`, shifts, `ubfm`→`ubfx`, `rbit`, flag-setting variants),
//! conditional selects (`csel`/`csinc`/`csneg`), compare-and-branch
//! (`cbz`/`tbz`), multiply/divide, loads/stores with pre/post-increment
//! addressing (the µop "expansion ratio" of Fig. 2), and a small FP
//! repertoire for the floating-point workloads.
//!
//! # Examples
//!
//! ```
//! use tvp_isa::exec::{exec_alu, Operands};
//! use tvp_isa::inst::build;
//! use tvp_isa::op::{Op, Width};
//! use tvp_isa::reg::x;
//!
//! // `add x0, x1, #5`, executed functionally with x1 == 37:
//! let inst = build::add(x(0), x(1), 5i64);
//! let r = exec_alu(inst.op, inst.width, inst.sets_flags,
//!                  Operands { a: 37, b: 5, ..Default::default() });
//! assert_eq!(r.value, 42);
//! ```

pub mod exec;
pub mod flags;
pub mod inst;
pub mod op;
pub mod reg;
pub mod stream;

pub use exec::{exec_alu, AluResult, Operands};
pub use flags::{Cond, Nzcv};
pub use inst::{expand, AddrMode, Inst, Src2};
pub use op::{BranchKind, ExecClass, Op, Width};
pub use reg::{Reg, XZR};
