//! Architectural instructions, micro-ops and µop expansion.
//!
//! Programs are sequences of [`Inst`]. At decode, an instruction expands
//! into one or more micro-ops ([`expand`]): memory operations with
//! pre/post-increment addressing split into an access µop plus a
//! base-update `add` µop, mirroring the gem5 behaviour the paper measures
//! in Fig. 2 (the "expansion ratio").

use crate::op::{Op, Width};
use crate::reg::Reg;
use std::fmt;

/// Second source operand: a register or an immediate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Src2 {
    /// No second operand.
    None,
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i64),
}

impl Src2 {
    /// Returns the register, if this operand is a register.
    #[must_use]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Src2::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the immediate, if this operand is an immediate.
    #[must_use]
    pub fn imm(self) -> Option<i64> {
        match self {
            Src2::Imm(i) => Some(i),
            _ => None,
        }
    }
}

impl From<Reg> for Src2 {
    fn from(r: Reg) -> Self {
        Src2::Reg(r)
    }
}

impl From<i64> for Src2 {
    fn from(i: i64) -> Self {
        Src2::Imm(i)
    }
}

/// Memory addressing mode of an architectural load/store.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AddrMode {
    /// `[base, #disp]`.
    BaseDisp {
        /// Base address register.
        base: Reg,
        /// Signed byte displacement.
        disp: i64,
    },
    /// `[base, index, lsl #shift]`.
    BaseIndex {
        /// Base address register.
        base: Reg,
        /// Index register.
        index: Reg,
        /// Left shift applied to the index (0–4).
        shift: u8,
    },
    /// `[base, #disp]!` — base is updated *before* the access.
    PreIndex {
        /// Base address register (written back).
        base: Reg,
        /// Signed byte displacement.
        disp: i64,
    },
    /// `[base], #disp` — base is updated *after* the access.
    PostIndex {
        /// Base address register (written back).
        base: Reg,
        /// Signed byte displacement.
        disp: i64,
    },
}

impl AddrMode {
    /// The base address register.
    #[must_use]
    pub fn base(self) -> Reg {
        match self {
            AddrMode::BaseDisp { base, .. }
            | AddrMode::BaseIndex { base, .. }
            | AddrMode::PreIndex { base, .. }
            | AddrMode::PostIndex { base, .. } => base,
        }
    }

    /// Returns `true` for pre/post-increment modes, which expand into two
    /// micro-ops.
    #[must_use]
    pub fn has_writeback(self) -> bool {
        matches!(self, AddrMode::PreIndex { .. } | AddrMode::PostIndex { .. })
    }
}

/// An architectural instruction (and, after [`expand`], a micro-op).
///
/// Micro-ops only ever use [`AddrMode::BaseDisp`] or
/// [`AddrMode::BaseIndex`] addressing.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Inst {
    /// Operation kind.
    pub op: Op,
    /// Operand width for integer operations.
    pub width: Width,
    /// Destination register.
    pub dst: Option<Reg>,
    /// First source register (also the data register for stores).
    pub src1: Option<Reg>,
    /// Second source operand.
    pub src2: Src2,
    /// Third source register (`madd`/`msub`/`fmadd` addend).
    pub src3: Option<Reg>,
    /// Set condition flags (`adds`/`subs`/`ands`; always set for `fcmp`).
    pub sets_flags: bool,
    /// Memory addressing (loads/stores only).
    pub addr: Option<AddrMode>,
    /// Direct branch target (program counter), resolved by the assembler.
    pub target: Option<u64>,
}

impl Inst {
    /// Creates a no-operand instruction template; builders in
    /// `tvp-workloads` fill in the fields.
    #[must_use]
    pub fn new(op: Op) -> Self {
        Inst {
            op,
            width: Width::W64,
            dst: None,
            src1: None,
            src2: Src2::None,
            src3: None,
            sets_flags: false,
            addr: None,
            target: None,
        }
    }

    /// All source registers read by this instruction, including the
    /// address registers of memory operations and `NZCV` for
    /// flag-reading operations. Order is deterministic.
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        let addr_regs = match self.addr {
            Some(AddrMode::BaseIndex { base, index, .. }) => [Some(base), Some(index)],
            Some(m) => [Some(m.base()), None],
            None => [None, None],
        };
        let flags = if self.op.reads_flags() { Some(Reg::Nzcv) } else { None };
        self.src1
            .into_iter()
            .chain(self.src2.reg())
            .chain(self.src3)
            .chain(addr_regs.into_iter().flatten())
            .chain(flags)
    }

    /// All destination registers written by this instruction, including
    /// `NZCV` for flag-setting operations.
    pub fn dst_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        let flags = if self.sets_flags { Some(Reg::Nzcv) } else { None };
        self.dst.into_iter().chain(flags)
    }

    /// Returns `true` if this instruction writes at least one *writable*
    /// general-purpose integer register — the paper's value-prediction
    /// eligibility criterion (§6.1).
    #[must_use]
    pub fn produces_gpr(&self) -> bool {
        self.dst.is_some_and(Reg::is_gpr)
    }

    /// Validates internal consistency; used by the assembler and by
    /// property tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn validate(&self) -> Result<(), String> {
        if self.op.is_mem() && self.addr.is_none() {
            return Err(format!("memory op {} lacks an addressing mode", self.op));
        }
        if !self.op.is_mem() && self.addr.is_some() {
            return Err(format!("non-memory op {} has an addressing mode", self.op));
        }
        if self.sets_flags && !self.op.may_set_flags() {
            return Err(format!("op {} cannot set flags", self.op));
        }
        if self.op == Op::Fcmp && !self.sets_flags {
            return Err("fcmp must set flags".to_owned());
        }
        match self.op.branch_kind() {
            Some(
                crate::op::BranchKind::CondDirect
                | crate::op::BranchKind::UncondDirect
                | crate::op::BranchKind::Call,
            ) if self.target.is_none() => {
                return Err(format!("direct branch {} lacks a target", self.op));
            }
            Some(
                crate::op::BranchKind::Indirect
                | crate::op::BranchKind::IndirectCall
                | crate::op::BranchKind::Return,
            ) if self.src1.is_none() => {
                return Err(format!("indirect branch {} lacks a source register", self.op));
            }
            _ => {}
        }
        if let Op::Ubfx { lsb, width } | Op::Sbfx { lsb, width } = self.op {
            if width == 0 || u32::from(lsb) + u32::from(width) > 64 {
                return Err(format!("bitfield out of range: lsb={lsb} width={width}"));
            }
        }
        if let Op::Load { size, .. } | Op::Store { size } = self.op {
            if !matches!(size, 1 | 2 | 4 | 8) {
                return Err(format!("unsupported access size {size}"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if self.sets_flags && self.op != Op::Fcmp {
            write!(f, "s")?;
        }
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src1 {
            write!(f, ", {s}")?;
        }
        match self.src2 {
            Src2::Reg(r) => write!(f, ", {r}")?,
            Src2::Imm(i) => write!(f, ", #{i}")?,
            Src2::None => {}
        }
        if let Some(s) = self.src3 {
            write!(f, ", {s}")?;
        }
        if let Some(a) = self.addr {
            match a {
                AddrMode::BaseDisp { base, disp } => write!(f, ", [{base}, #{disp}]")?,
                AddrMode::BaseIndex { base, index, shift } => {
                    write!(f, ", [{base}, {index}, lsl #{shift}]")?;
                }
                AddrMode::PreIndex { base, disp } => write!(f, ", [{base}, #{disp}]!")?,
                AddrMode::PostIndex { base, disp } => write!(f, ", [{base}], #{disp}")?,
            }
        }
        if let Some(t) = self.target {
            write!(f, ", ->{t:#x}")?;
        }
        Ok(())
    }
}

/// Expands an architectural instruction into micro-ops.
///
/// Pre-index addressing becomes `add base, base, #disp` followed by the
/// access with zero displacement; post-index becomes the access followed
/// by the base update. Every other instruction is a single µop.
///
/// # Examples
///
/// ```
/// use tvp_isa::inst::{expand, AddrMode, Inst};
/// use tvp_isa::op::Op;
/// use tvp_isa::reg::x;
///
/// let mut ldr = Inst::new(Op::Load { size: 8, signed: false });
/// ldr.dst = Some(x(0));
/// ldr.addr = Some(AddrMode::PostIndex { base: x(1), disp: 8 });
/// let uops = expand(&ldr);
/// assert_eq!(uops.len(), 2);
/// assert!(uops[0].op.is_load());
/// assert_eq!(uops[1].op, Op::Add); // base update
/// ```
#[must_use]
pub fn expand(inst: &Inst) -> Vec<Inst> {
    match inst.addr {
        Some(AddrMode::PreIndex { base, disp }) => {
            let mut update = Inst::new(Op::Add);
            update.dst = Some(base);
            update.src1 = Some(base);
            update.src2 = Src2::Imm(disp);
            let mut access = *inst;
            access.addr = Some(AddrMode::BaseDisp { base, disp: 0 });
            vec![update, access]
        }
        Some(AddrMode::PostIndex { base, disp }) => {
            let mut access = *inst;
            access.addr = Some(AddrMode::BaseDisp { base, disp: 0 });
            let mut update = Inst::new(Op::Add);
            update.dst = Some(base);
            update.src1 = Some(base);
            update.src2 = Src2::Imm(disp);
            vec![access, update]
        }
        _ => vec![*inst],
    }
}

/// Convenience constructors mirroring assembly mnemonics. These are the
/// building blocks used by the workload DSL.
pub mod build {
    use super::{AddrMode, Inst, Src2};
    use crate::flags::Cond;
    use crate::op::{Op, Width};
    use crate::reg::{Reg, XZR};

    fn alu(op: Op, dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        let mut i = Inst::new(op);
        i.dst = Some(dst);
        i.src1 = Some(src1);
        i.src2 = src2.into();
        i
    }

    /// `add dst, src1, src2`.
    #[must_use]
    pub fn add(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Add, dst, src1, src2)
    }

    /// `sub dst, src1, src2`.
    #[must_use]
    pub fn sub(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Sub, dst, src1, src2)
    }

    /// `and dst, src1, src2`.
    #[must_use]
    pub fn and(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::And, dst, src1, src2)
    }

    /// `orr dst, src1, src2`.
    #[must_use]
    pub fn orr(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Orr, dst, src1, src2)
    }

    /// `eor dst, src1, src2`.
    #[must_use]
    pub fn eor(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Eor, dst, src1, src2)
    }

    /// `bic dst, src1, src2`.
    #[must_use]
    pub fn bic(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Bic, dst, src1, src2)
    }

    /// `adds dst, src1, src2`.
    #[must_use]
    pub fn adds(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        let mut i = alu(Op::Add, dst, src1, src2);
        i.sets_flags = true;
        i
    }

    /// `subs dst, src1, src2`.
    #[must_use]
    pub fn subs(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        let mut i = alu(Op::Sub, dst, src1, src2);
        i.sets_flags = true;
        i
    }

    /// `ands dst, src1, src2`.
    #[must_use]
    pub fn ands(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        let mut i = alu(Op::And, dst, src1, src2);
        i.sets_flags = true;
        i
    }

    /// `cmp src1, src2` (alias of `subs xzr, src1, src2`).
    #[must_use]
    pub fn cmp(src1: Reg, src2: impl Into<Src2>) -> Inst {
        subs(XZR, src1, src2)
    }

    /// `tst src1, src2` (alias of `ands xzr, src1, src2`).
    #[must_use]
    pub fn tst(src1: Reg, src2: impl Into<Src2>) -> Inst {
        ands(XZR, src1, src2)
    }

    /// `lsl dst, src1, src2`.
    #[must_use]
    pub fn lsl(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Lsl, dst, src1, src2)
    }

    /// `lsr dst, src1, src2`.
    #[must_use]
    pub fn lsr(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Lsr, dst, src1, src2)
    }

    /// `asr dst, src1, src2`.
    #[must_use]
    pub fn asr(dst: Reg, src1: Reg, src2: impl Into<Src2>) -> Inst {
        alu(Op::Asr, dst, src1, src2)
    }

    /// `rbit dst, src1`.
    #[must_use]
    pub fn rbit(dst: Reg, src1: Reg) -> Inst {
        let mut i = Inst::new(Op::Rbit);
        i.dst = Some(dst);
        i.src1 = Some(src1);
        i
    }

    /// `clz dst, src1`.
    #[must_use]
    pub fn clz(dst: Reg, src1: Reg) -> Inst {
        let mut i = Inst::new(Op::Clz);
        i.dst = Some(dst);
        i.src1 = Some(src1);
        i
    }

    /// `ubfx dst, src1, #lsb, #width`.
    #[must_use]
    pub fn ubfx(dst: Reg, src1: Reg, lsb: u8, width: u8) -> Inst {
        let mut i = Inst::new(Op::Ubfx { lsb, width });
        i.dst = Some(dst);
        i.src1 = Some(src1);
        i
    }

    /// `movz dst, #imm` (also covers arbitrary move-immediates).
    #[must_use]
    pub fn movz(dst: Reg, imm: i64) -> Inst {
        let mut i = Inst::new(Op::MovImm);
        i.dst = Some(dst);
        i.src2 = Src2::Imm(imm);
        i
    }

    /// `mov dst, src` (register move).
    #[must_use]
    pub fn mov(dst: Reg, src: Reg) -> Inst {
        let mut i = Inst::new(Op::Mov);
        i.dst = Some(dst);
        i.src1 = Some(src);
        i
    }

    /// `csel dst, src1, src2, cond`.
    #[must_use]
    pub fn csel(dst: Reg, src1: Reg, src2: Reg, cond: Cond) -> Inst {
        alu(Op::Csel(cond), dst, src1, Src2::Reg(src2))
    }

    /// `csinc dst, src1, src2, cond`.
    #[must_use]
    pub fn csinc(dst: Reg, src1: Reg, src2: Reg, cond: Cond) -> Inst {
        alu(Op::Csinc(cond), dst, src1, Src2::Reg(src2))
    }

    /// `csneg dst, src1, src2, cond`.
    #[must_use]
    pub fn csneg(dst: Reg, src1: Reg, src2: Reg, cond: Cond) -> Inst {
        alu(Op::Csneg(cond), dst, src1, Src2::Reg(src2))
    }

    /// `cset dst, cond` (alias of `csinc dst, xzr, xzr, !cond`).
    #[must_use]
    pub fn cset(dst: Reg, cond: Cond) -> Inst {
        csinc(dst, XZR, XZR, cond.invert())
    }

    /// `mul dst, src1, src2`.
    #[must_use]
    pub fn mul(dst: Reg, src1: Reg, src2: Reg) -> Inst {
        alu(Op::Mul, dst, src1, Src2::Reg(src2))
    }

    /// `madd dst, src1, src2, src3`.
    #[must_use]
    pub fn madd(dst: Reg, src1: Reg, src2: Reg, src3: Reg) -> Inst {
        let mut i = alu(Op::Madd, dst, src1, Src2::Reg(src2));
        i.src3 = Some(src3);
        i
    }

    /// `udiv dst, src1, src2`.
    #[must_use]
    pub fn udiv(dst: Reg, src1: Reg, src2: Reg) -> Inst {
        alu(Op::Udiv, dst, src1, Src2::Reg(src2))
    }

    /// `sdiv dst, src1, src2`.
    #[must_use]
    pub fn sdiv(dst: Reg, src1: Reg, src2: Reg) -> Inst {
        alu(Op::Sdiv, dst, src1, Src2::Reg(src2))
    }

    /// `ldr dst, <addr>` (64-bit).
    #[must_use]
    pub fn ldr(dst: Reg, addr: AddrMode) -> Inst {
        ldr_sized(dst, addr, 8, false)
    }

    /// Load with explicit size/signedness.
    #[must_use]
    pub fn ldr_sized(dst: Reg, addr: AddrMode, size: u8, signed: bool) -> Inst {
        let mut i = Inst::new(Op::Load { size, signed });
        i.dst = Some(dst);
        i.addr = Some(addr);
        i
    }

    /// `str data, <addr>` (64-bit).
    #[must_use]
    pub fn str(data: Reg, addr: AddrMode) -> Inst {
        str_sized(data, addr, 8)
    }

    /// Store with explicit size.
    #[must_use]
    pub fn str_sized(data: Reg, addr: AddrMode, size: u8) -> Inst {
        let mut i = Inst::new(Op::Store { size });
        i.src1 = Some(data);
        i.addr = Some(addr);
        i
    }

    /// FP two-operand helper.
    fn fp2(op: Op, dst: Reg, src1: Reg, src2: Reg) -> Inst {
        alu(op, dst, src1, Src2::Reg(src2))
    }

    /// `fadd dst, src1, src2`.
    #[must_use]
    pub fn fadd(dst: Reg, src1: Reg, src2: Reg) -> Inst {
        fp2(Op::Fadd, dst, src1, src2)
    }

    /// `fsub dst, src1, src2`.
    #[must_use]
    pub fn fsub(dst: Reg, src1: Reg, src2: Reg) -> Inst {
        fp2(Op::Fsub, dst, src1, src2)
    }

    /// `fmul dst, src1, src2`.
    #[must_use]
    pub fn fmul(dst: Reg, src1: Reg, src2: Reg) -> Inst {
        fp2(Op::Fmul, dst, src1, src2)
    }

    /// `fdiv dst, src1, src2`.
    #[must_use]
    pub fn fdiv(dst: Reg, src1: Reg, src2: Reg) -> Inst {
        fp2(Op::Fdiv, dst, src1, src2)
    }

    /// `fmadd dst, src1, src2, src3`.
    #[must_use]
    pub fn fmadd(dst: Reg, src1: Reg, src2: Reg, src3: Reg) -> Inst {
        let mut i = fp2(Op::Fmadd, dst, src1, src2);
        i.src3 = Some(src3);
        i
    }

    /// `fcmp src1, src2`.
    #[must_use]
    pub fn fcmp(src1: Reg, src2: Reg) -> Inst {
        let mut i = Inst::new(Op::Fcmp);
        i.src1 = Some(src1);
        i.src2 = Src2::Reg(src2);
        i.sets_flags = true;
        i
    }

    /// `scvtf dst, src` (signed int → FP).
    #[must_use]
    pub fn scvtf(dst: Reg, src: Reg) -> Inst {
        let mut i = Inst::new(Op::FcvtFromInt);
        i.dst = Some(dst);
        i.src1 = Some(src);
        i
    }

    /// `fcvtzs dst, src` (FP → signed int).
    #[must_use]
    pub fn fcvtzs(dst: Reg, src: Reg) -> Inst {
        let mut i = Inst::new(Op::FcvtToInt);
        i.dst = Some(dst);
        i.src1 = Some(src);
        i
    }

    /// `nop`.
    #[must_use]
    pub fn nop() -> Inst {
        Inst::new(Op::Nop)
    }

    /// Marks an instruction as 32-bit (`w`-register) width.
    #[must_use]
    pub fn w32(mut inst: Inst) -> Inst {
        inst.width = Width::W32;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use crate::op::Op;
    use crate::reg::{x, XZR};

    #[test]
    fn expansion_single_uop_for_plain_ops() {
        let i = add(x(0), x(1), x(2));
        assert_eq!(expand(&i).len(), 1);
        let l = ldr(x(0), AddrMode::BaseDisp { base: x(1), disp: 16 });
        assert_eq!(expand(&l).len(), 1);
    }

    #[test]
    fn expansion_preindex_order() {
        let l = ldr(x(0), AddrMode::PreIndex { base: x(1), disp: 8 });
        let uops = expand(&l);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].op, Op::Add);
        assert_eq!(uops[0].dst, Some(x(1)));
        assert!(uops[1].op.is_load());
        assert_eq!(uops[1].addr, Some(AddrMode::BaseDisp { base: x(1), disp: 0 }));
    }

    #[test]
    fn expansion_postindex_order() {
        let s = str(x(5), AddrMode::PostIndex { base: x(2), disp: -4 });
        let uops = expand(&s);
        assert_eq!(uops.len(), 2);
        assert!(uops[0].op.is_store());
        assert_eq!(uops[1].op, Op::Add);
        assert_eq!(uops[1].src2, Src2::Imm(-4));
    }

    #[test]
    fn src_regs_include_address_and_flags() {
        let l = ldr(x(0), AddrMode::BaseIndex { base: x(1), index: x(2), shift: 3 });
        let srcs: Vec<_> = l.src_regs().collect();
        assert_eq!(srcs, vec![x(1), x(2)]);

        let c = csel(x(0), x(1), x(2), crate::flags::Cond::Eq);
        let srcs: Vec<_> = c.src_regs().collect();
        assert_eq!(srcs, vec![x(1), x(2), Reg::Nzcv]);
    }

    #[test]
    fn dst_regs_include_flags() {
        let i = subs(XZR, x(1), x(2));
        let dsts: Vec<_> = i.dst_regs().collect();
        assert_eq!(dsts, vec![XZR, Reg::Nzcv]);
        assert!(!i.produces_gpr()); // xzr is not a GPR
        assert!(adds(x(3), x(1), 4i64).produces_gpr());
    }

    #[test]
    fn store_data_is_src1() {
        let s = str(x(7), AddrMode::BaseDisp { base: x(8), disp: 0 });
        let srcs: Vec<_> = s.src_regs().collect();
        assert_eq!(srcs, vec![x(7), x(8)]);
        assert!(s.dst_regs().next().is_none());
    }

    #[test]
    fn validate_catches_malformed() {
        let mut bad = add(x(0), x(1), x(2));
        bad.addr = Some(AddrMode::BaseDisp { base: x(3), disp: 0 });
        assert!(bad.validate().is_err());

        let mut bad_flags = orr(x(0), x(1), x(2));
        bad_flags.sets_flags = true;
        assert!(bad_flags.validate().is_err());

        let b = Inst::new(Op::B);
        assert!(b.validate().is_err(), "direct branch without target");

        let good = cmp(x(1), 0i64);
        assert!(good.validate().is_ok());
    }

    #[test]
    fn cset_is_csinc_alias() {
        let i = cset(x(0), crate::flags::Cond::Eq);
        assert_eq!(i.op, Op::Csinc(crate::flags::Cond::Ne));
        assert_eq!(i.src1, Some(XZR));
        assert_eq!(i.src2, Src2::Reg(XZR));
    }

    #[test]
    fn display_is_readable() {
        let i = adds(x(0), x(1), 42i64);
        assert_eq!(i.to_string(), "adds x0, x1, #42");
        let l = ldr(x(3), AddrMode::PostIndex { base: x(4), disp: 8 });
        assert_eq!(l.to_string(), "ldr8 x3, [x4], #8");
    }
}
