//! Operation kinds and their static properties.
//!
//! [`Op`] enumerates every micro-operation the machine can execute. The
//! set mirrors the ARMv8 subset used by the paper's evaluation: the
//! integer/logic operations of SpSR Table 1, conditional selects,
//! multiply/divide, loads/stores, branches and a small FP repertoire.

use crate::flags::Cond;
use std::fmt;

/// Operand width of an integer operation. `W32` operations compute on the
/// low 32 bits and zero-extend the result (ARMv8 `w`-register semantics).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Width {
    /// 32-bit (`w` registers).
    W32,
    /// 64-bit (`x` registers).
    #[default]
    W64,
}

impl Width {
    /// Number of value bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Mask selecting the value bits.
    #[must_use]
    pub fn mask(self) -> u64 {
        match self {
            Width::W32 => 0xFFFF_FFFF,
            Width::W64 => u64::MAX,
        }
    }
}

/// The kind of control-flow transfer a branch micro-op performs, used to
/// pick the right predictor structure (TAGE vs BTB vs RAS vs IBTC).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// `b.cond`, `cbz`, `cbnz`, `tbz`, `tbnz`.
    CondDirect,
    /// `b`.
    UncondDirect,
    /// `bl`.
    Call,
    /// `ret`.
    Return,
    /// `br`.
    Indirect,
    /// `blr`.
    IndirectCall,
}

/// Execution resource class; selects functional unit and latency.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExecClass {
    /// Simple one-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Simple FP/SIMD operation.
    FpAlu,
    /// FP multiply.
    FpMul,
    /// FP multiply-accumulate.
    FpMac,
    /// Unpipelined FP divide.
    FpDiv,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Control transfer.
    Branch,
    /// No-operation (still fetched/decoded/retired).
    Nop,
}

/// A micro-operation kind.
///
/// Flag-setting variants (`adds`/`subs`/`ands`) are expressed by the
/// `sets_flags` field of [`crate::inst::Inst`], not by separate opcodes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    // --- integer ALU ---
    /// `add dst, src1, src2`.
    Add,
    /// `sub dst, src1, src2`.
    Sub,
    /// `and dst, src1, src2`.
    And,
    /// `orr dst, src1, src2`.
    Orr,
    /// `eor dst, src1, src2`.
    Eor,
    /// `bic dst, src1, src2` (`src1 & !src2`).
    Bic,
    /// Logical shift left; shift amount from `src2`.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Rotate right.
    Ror,
    /// Bit reverse.
    Rbit,
    /// Count leading zeros.
    Clz,
    /// Unsigned bitfield extract: `(src1 >> lsb) & mask(width)`.
    /// Stands in for ARMv8 `ubfm` (paper Table 1 row `ubfm`).
    Ubfx {
        /// Least significant extracted bit.
        lsb: u8,
        /// Number of extracted bits (1–64).
        width: u8,
    },
    /// Signed bitfield extract.
    Sbfx {
        /// Least significant extracted bit.
        lsb: u8,
        /// Number of extracted bits (1–64).
        width: u8,
    },
    /// Move immediate (`movz`/`movn` collapsed): result is the immediate.
    MovImm,
    /// Register move (`mov dst, src1`, i.e. `orr dst, xzr, src1`).
    Mov,
    /// Conditional select: `cond ? src1 : src2`.
    Csel(Cond),
    /// Conditional select-increment: `cond ? src1 : src2 + 1`.
    Csinc(Cond),
    /// Conditional select-negate: `cond ? src1 : -src2`.
    Csneg(Cond),
    /// Conditional select-invert: `cond ? src1 : !src2`.
    Csinv(Cond),

    // --- integer multiply / divide ---
    /// `mul dst, src1, src2`.
    Mul,
    /// `madd dst, src1, src2, src3` (`src3 + src1 * src2`).
    Madd,
    /// `msub dst, src1, src2, src3` (`src3 - src1 * src2`).
    Msub,
    /// Unsigned divide (`x / 0 == 0` per ARMv8).
    Udiv,
    /// Signed divide.
    Sdiv,

    // --- floating point ---
    /// FP add.
    Fadd,
    /// FP subtract.
    Fsub,
    /// FP multiply.
    Fmul,
    /// FP divide.
    Fdiv,
    /// FP fused multiply-add (`src3 + src1 * src2`).
    Fmadd,
    /// FP negate.
    Fneg,
    /// FP absolute value.
    Fabs,
    /// FP square root (uses the divider).
    Fsqrt,
    /// FP compare, sets `NZCV`.
    Fcmp,
    /// FP register move.
    Fmov,
    /// Move GPR bits into an FP register.
    FmovFromInt,
    /// Move FP register bits into a GPR.
    FmovToInt,
    /// Convert FP to signed integer (round toward zero, saturating).
    FcvtToInt,
    /// Convert signed integer to FP.
    FcvtFromInt,

    // --- memory ---
    /// Load `size` bytes; `signed` selects sign- vs zero-extension.
    Load {
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
        /// Sign-extend the loaded value.
        signed: bool,
    },
    /// Store the low `size` bytes of the data register.
    Store {
        /// Access size in bytes (1, 2, 4 or 8).
        size: u8,
    },

    // --- control flow ---
    /// Unconditional direct branch.
    B,
    /// Direct call (writes link register x30).
    Bl,
    /// Indirect branch through `src1`.
    Br,
    /// Indirect call through `src1` (writes x30).
    Blr,
    /// Function return (indirect through `src1`, conventionally x30).
    Ret,
    /// Conditional direct branch on `NZCV`.
    BCond(Cond),
    /// Compare-and-branch if zero.
    Cbz,
    /// Compare-and-branch if non-zero.
    Cbnz,
    /// Test bit and branch if zero.
    Tbz(u8),
    /// Test bit and branch if non-zero.
    Tbnz(u8),

    /// No-operation.
    Nop,
}

impl Op {
    /// The execution resource class of this operation.
    #[must_use]
    pub fn exec_class(self) -> ExecClass {
        use Op::*;
        match self {
            Add
            | Sub
            | And
            | Orr
            | Eor
            | Bic
            | Lsl
            | Lsr
            | Asr
            | Ror
            | Rbit
            | Clz
            | Ubfx { .. }
            | Sbfx { .. }
            | MovImm
            | Mov
            | Csel(_)
            | Csinc(_)
            | Csneg(_)
            | Csinv(_)
            | FmovToInt
            | FcvtToInt => ExecClass::IntAlu,
            Mul | Madd | Msub => ExecClass::IntMul,
            Udiv | Sdiv => ExecClass::IntDiv,
            Fadd | Fsub | Fneg | Fabs | Fcmp | Fmov | FmovFromInt | FcvtFromInt => ExecClass::FpAlu,
            Fmul => ExecClass::FpMul,
            Fmadd => ExecClass::FpMac,
            Fdiv | Fsqrt => ExecClass::FpDiv,
            Load { .. } => ExecClass::Load,
            Store { .. } => ExecClass::Store,
            B | Bl | Br | Blr | Ret | BCond(_) | Cbz | Cbnz | Tbz(_) | Tbnz(_) => ExecClass::Branch,
            Nop => ExecClass::Nop,
        }
    }

    /// Returns the branch kind, or `None` for non-branch operations.
    #[must_use]
    pub fn branch_kind(self) -> Option<BranchKind> {
        match self {
            Op::B => Some(BranchKind::UncondDirect),
            Op::Bl => Some(BranchKind::Call),
            Op::Br => Some(BranchKind::Indirect),
            Op::Blr => Some(BranchKind::IndirectCall),
            Op::Ret => Some(BranchKind::Return),
            Op::BCond(_) | Op::Cbz | Op::Cbnz | Op::Tbz(_) | Op::Tbnz(_) => {
                Some(BranchKind::CondDirect)
            }
            _ => None,
        }
    }

    /// Returns `true` if this operation is a branch.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self.branch_kind().is_some()
    }

    /// Returns `true` if this operation reads the condition flags.
    #[must_use]
    pub fn reads_flags(self) -> bool {
        matches!(self, Op::Csel(_) | Op::Csinc(_) | Op::Csneg(_) | Op::Csinv(_) | Op::BCond(_))
    }

    /// The condition code evaluated by this operation, if any.
    #[must_use]
    pub fn cond(self) -> Option<Cond> {
        match self {
            Op::Csel(c) | Op::Csinc(c) | Op::Csneg(c) | Op::Csinv(c) | Op::BCond(c) => Some(c),
            _ => None,
        }
    }

    /// Returns `true` if the operation is allowed to set flags (i.e. a
    /// `sets_flags` variant such as `adds`/`subs`/`ands` exists), or
    /// always sets them (`fcmp`).
    #[must_use]
    pub fn may_set_flags(self) -> bool {
        matches!(self, Op::Add | Op::Sub | Op::And | Op::Bic | Op::Fcmp)
    }

    /// Returns `true` for memory operations.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// Returns `true` for loads.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// Returns `true` for stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store { .. })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        match self {
            Add => write!(f, "add"),
            Sub => write!(f, "sub"),
            And => write!(f, "and"),
            Orr => write!(f, "orr"),
            Eor => write!(f, "eor"),
            Bic => write!(f, "bic"),
            Lsl => write!(f, "lsl"),
            Lsr => write!(f, "lsr"),
            Asr => write!(f, "asr"),
            Ror => write!(f, "ror"),
            Rbit => write!(f, "rbit"),
            Clz => write!(f, "clz"),
            Ubfx { lsb, width } => write!(f, "ubfx #{lsb},#{width}"),
            Sbfx { lsb, width } => write!(f, "sbfx #{lsb},#{width}"),
            MovImm => write!(f, "movz"),
            Mov => write!(f, "mov"),
            Csel(c) => write!(f, "csel.{c}"),
            Csinc(c) => write!(f, "csinc.{c}"),
            Csneg(c) => write!(f, "csneg.{c}"),
            Csinv(c) => write!(f, "csinv.{c}"),
            Mul => write!(f, "mul"),
            Madd => write!(f, "madd"),
            Msub => write!(f, "msub"),
            Udiv => write!(f, "udiv"),
            Sdiv => write!(f, "sdiv"),
            Fadd => write!(f, "fadd"),
            Fsub => write!(f, "fsub"),
            Fmul => write!(f, "fmul"),
            Fdiv => write!(f, "fdiv"),
            Fmadd => write!(f, "fmadd"),
            Fneg => write!(f, "fneg"),
            Fabs => write!(f, "fabs"),
            Fsqrt => write!(f, "fsqrt"),
            Fcmp => write!(f, "fcmp"),
            Fmov => write!(f, "fmov"),
            FmovFromInt => write!(f, "fmov.from_int"),
            FmovToInt => write!(f, "fmov.to_int"),
            FcvtToInt => write!(f, "fcvtzs"),
            FcvtFromInt => write!(f, "scvtf"),
            Load { size, signed } => {
                let s = if *signed { "s" } else { "" };
                write!(f, "ldr{s}{size}")
            }
            Store { size } => write!(f, "str{size}"),
            B => write!(f, "b"),
            Bl => write!(f, "bl"),
            Br => write!(f, "br"),
            Blr => write!(f, "blr"),
            Ret => write!(f, "ret"),
            BCond(c) => write!(f, "b.{c}"),
            Cbz => write!(f, "cbz"),
            Cbnz => write!(f, "cbnz"),
            Tbz(b) => write!(f, "tbz #{b}"),
            Tbnz(b) => write!(f, "tbnz #{b}"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_class_covers_table2_units() {
        assert_eq!(Op::Add.exec_class(), ExecClass::IntAlu);
        assert_eq!(Op::Madd.exec_class(), ExecClass::IntMul);
        assert_eq!(Op::Udiv.exec_class(), ExecClass::IntDiv);
        assert_eq!(Op::Fadd.exec_class(), ExecClass::FpAlu);
        assert_eq!(Op::Fmul.exec_class(), ExecClass::FpMul);
        assert_eq!(Op::Fmadd.exec_class(), ExecClass::FpMac);
        assert_eq!(Op::Fdiv.exec_class(), ExecClass::FpDiv);
        assert_eq!(Op::Load { size: 8, signed: false }.exec_class(), ExecClass::Load);
        assert_eq!(Op::Store { size: 4 }.exec_class(), ExecClass::Store);
        assert_eq!(Op::Ret.exec_class(), ExecClass::Branch);
    }

    #[test]
    fn branch_kinds() {
        assert_eq!(Op::B.branch_kind(), Some(BranchKind::UncondDirect));
        assert_eq!(Op::Bl.branch_kind(), Some(BranchKind::Call));
        assert_eq!(Op::Ret.branch_kind(), Some(BranchKind::Return));
        assert_eq!(Op::Br.branch_kind(), Some(BranchKind::Indirect));
        assert_eq!(Op::Cbz.branch_kind(), Some(BranchKind::CondDirect));
        assert_eq!(Op::Add.branch_kind(), None);
    }

    #[test]
    fn flag_readers() {
        use crate::flags::Cond;
        assert!(Op::Csel(Cond::Eq).reads_flags());
        assert!(Op::BCond(Cond::Gt).reads_flags());
        assert!(!Op::Cbz.reads_flags()); // cbz tests a register, not flags
        assert!(!Op::Add.reads_flags());
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::W32.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::W64.mask(), u64::MAX);
        assert_eq!(Width::W32.bits(), 32);
    }

    #[test]
    fn may_set_flags_matches_armv8_subset() {
        assert!(Op::Add.may_set_flags()); // adds
        assert!(Op::Sub.may_set_flags()); // subs
        assert!(Op::And.may_set_flags()); // ands
        assert!(!Op::Orr.may_set_flags());
        assert!(!Op::Eor.may_set_flags());
        assert!(Op::Fcmp.may_set_flags());
    }
}
