//! Condition flags (`NZCV`) and condition codes.
//!
//! ARMv8 flag-setting instructions (`adds`, `subs`, `ands`, …) write the
//! four condition flags; conditional instructions (`b.cond`, `csel`,
//! `csinc`, `csneg`) evaluate a [`Cond`] against them.
//!
//! SpSR keeps track of `NZCV` in the frontend when the flags are produced
//! by a strength-reduced instruction (paper §4.2): an `ands` with a
//! predicted-zero operand always produces `{N=0, Z=1, C=0, V=0}`, which is
//! exactly [`Nzcv::ZERO_RESULT`].

use std::fmt;

/// The four ARMv8 condition flags.
///
/// # Examples
///
/// ```
/// use tvp_isa::flags::{Cond, Nzcv};
///
/// let flags = Nzcv::from_result(0, false, false);
/// assert!(flags.z);
/// assert!(Cond::Eq.eval(flags));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Nzcv {
    /// Negative: result's sign bit.
    pub n: bool,
    /// Zero: result equals zero.
    pub z: bool,
    /// Carry (or "no borrow" for subtraction).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl Nzcv {
    /// The flags produced by any flag-setting instruction whose result is
    /// guaranteed to be `0x0` with no carry/overflow, e.g. `ands` with a
    /// zero operand. Used by SpSR's frontend `NZCV` register.
    pub const ZERO_RESULT: Nzcv = Nzcv { n: false, z: true, c: false, v: false };

    /// Derives flags from a 64-bit result plus carry/overflow bits.
    #[must_use]
    pub fn from_result(result: u64, carry: bool, overflow: bool) -> Self {
        Nzcv { n: (result >> 63) & 1 == 1, z: result == 0, c: carry, v: overflow }
    }

    /// Derives flags from a 32-bit result plus carry/overflow bits.
    #[must_use]
    pub fn from_result32(result: u32, carry: bool, overflow: bool) -> Self {
        Nzcv { n: (result >> 31) & 1 == 1, z: result == 0, c: carry, v: overflow }
    }

    /// Packs the flags into the canonical 4-bit `NZCV` encoding
    /// (bit 3 = N, bit 2 = Z, bit 1 = C, bit 0 = V).
    #[must_use]
    pub fn pack(self) -> u8 {
        (u8::from(self.n) << 3)
            | (u8::from(self.z) << 2)
            | (u8::from(self.c) << 1)
            | u8::from(self.v)
    }

    /// Unpacks flags from the canonical 4-bit encoding; the upper four
    /// bits of `bits` are ignored.
    #[must_use]
    pub fn unpack(bits: u8) -> Self {
        Nzcv {
            n: bits & 0b1000 != 0,
            z: bits & 0b0100 != 0,
            c: bits & 0b0010 != 0,
            v: bits & 0b0001 != 0,
        }
    }
}

impl fmt::Display for Nzcv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { 'n' },
            if self.z { 'Z' } else { 'z' },
            if self.c { 'C' } else { 'c' },
            if self.v { 'V' } else { 'v' },
        )
    }
}

/// ARMv8 condition codes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq,
    /// Not equal (`Z == 0`).
    Ne,
    /// Carry set / unsigned higher or same (`C == 1`).
    Cs,
    /// Carry clear / unsigned lower (`C == 0`).
    Cc,
    /// Minus / negative (`N == 1`).
    Mi,
    /// Plus / positive or zero (`N == 0`).
    Pl,
    /// Overflow set (`V == 1`).
    Vs,
    /// Overflow clear (`V == 0`).
    Vc,
    /// Unsigned higher (`C == 1 && Z == 0`).
    Hi,
    /// Unsigned lower or same (`C == 0 || Z == 1`).
    Ls,
    /// Signed greater or equal (`N == V`).
    Ge,
    /// Signed less than (`N != V`).
    Lt,
    /// Signed greater than (`Z == 0 && N == V`).
    Gt,
    /// Signed less or equal (`Z == 1 || N != V`).
    Le,
    /// Always true.
    Al,
}

impl Cond {
    /// Evaluates the condition against a set of flags.
    #[must_use]
    pub fn eval(self, f: Nzcv) -> bool {
        match self {
            Cond::Eq => f.z,
            Cond::Ne => !f.z,
            Cond::Cs => f.c,
            Cond::Cc => !f.c,
            Cond::Mi => f.n,
            Cond::Pl => !f.n,
            Cond::Vs => f.v,
            Cond::Vc => !f.v,
            Cond::Hi => f.c && !f.z,
            Cond::Ls => !f.c || f.z,
            Cond::Ge => f.n == f.v,
            Cond::Lt => f.n != f.v,
            Cond::Gt => !f.z && f.n == f.v,
            Cond::Le => f.z || f.n != f.v,
            Cond::Al => true,
        }
    }

    /// The logically inverted condition (`invert(Eq) == Ne`, …).
    /// `Al` has no inversion in the ARMv8 encoding and maps to itself.
    #[must_use]
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Cs => Cond::Cc,
            Cond::Cc => Cond::Cs,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
            Cond::Hi => Cond::Ls,
            Cond::Ls => Cond::Hi,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Al => Cond::Al,
        }
    }

    /// All sixteen condition codes, useful for exhaustive tests.
    pub const ALL: [Cond; 15] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
    ];
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "al",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for bits in 0..16u8 {
            assert_eq!(Nzcv::unpack(bits).pack(), bits);
        }
    }

    #[test]
    fn zero_result_constant() {
        assert_eq!(Nzcv::ZERO_RESULT, Nzcv::from_result(0, false, false));
        assert_eq!(Nzcv::ZERO_RESULT.pack(), 0b0100);
    }

    #[test]
    fn from_result_sign_and_zero() {
        let f = Nzcv::from_result(u64::MAX, true, false);
        assert!(f.n && !f.z && f.c && !f.v);
        let f = Nzcv::from_result32(0x8000_0000, false, true);
        assert!(f.n && !f.z && !f.c && f.v);
    }

    #[test]
    fn inversion_is_involutive_and_complementary() {
        for cond in Cond::ALL {
            assert_eq!(cond.invert().invert(), cond);
            if cond == Cond::Al {
                continue;
            }
            for bits in 0..16u8 {
                let f = Nzcv::unpack(bits);
                assert_ne!(
                    cond.eval(f),
                    cond.invert().eval(f),
                    "{cond} vs {} on {f}",
                    cond.invert()
                );
            }
        }
    }

    #[test]
    fn eval_standard_cases() {
        let eq = Nzcv { z: true, ..Nzcv::default() };
        assert!(Cond::Eq.eval(eq));
        assert!(!Cond::Ne.eval(eq));
        assert!(Cond::Le.eval(eq));
        assert!(!Cond::Gt.eval(eq));
        assert!(Cond::Al.eval(eq));

        // Signed comparisons: N != V means less-than.
        let lt = Nzcv { n: true, v: false, ..Nzcv::default() };
        assert!(Cond::Lt.eval(lt));
        assert!(!Cond::Ge.eval(lt));

        // Unsigned: Hi requires carry and non-zero.
        let hi = Nzcv { c: true, z: false, ..Nzcv::default() };
        assert!(Cond::Hi.eval(hi));
        assert!(!Cond::Ls.eval(hi));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Cond::Eq.to_string(), "eq");
        assert_eq!(Nzcv::ZERO_RESULT.to_string(), "nZcv");
    }
}
