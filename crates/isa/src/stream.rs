//! Streaming `DynInst` trace wire format — primitives.
//!
//! This module owns the *byte-level* pieces of the streaming trace
//! format: LEB128 varints, zigzag signed encoding, a complete binary
//! codec for [`Inst`] micro-ops, and the chunked container framing
//! (magic, schema version, per-chunk FNV-1a checksums, an explicit
//! end-of-trace terminator). The record layer — how one executed µop
//! with its result/address/branch annotations maps onto these
//! primitives — lives in `tvp-workloads`, next to the trace type it
//! serializes; everything here is a pure function of byte slices so
//! the codec stays inside the determinism-audit boundary.
//!
//! File layout:
//!
//! ```text
//! magic      8 bytes    b"TVPDYNI\x01"
//! schema     u32        TRACE_SCHEMA
//! chunk*                any number of record chunks
//! end-chunk             terminator frame (totals echoed, checksummed)
//! ```
//!
//! Chunk frame (all integers little-endian):
//!
//! ```text
//! marker       u32      CHUNK_MARKER (records) or END_MARKER
//! payload_len  u32      bytes of payload that follow the header
//! records      u32      record count (0 for the terminator)
//! first_seq    u64      sequence number of the chunk's first µop
//! checksum     u64      FNV-1a over the payload bytes
//! payload      payload_len bytes
//! ```
//!
//! A torn tail, a flipped bit, version skew or a foreign file all
//! decode to a specific [`StreamError`] instead of a wrong trace —
//! the same "nothing is trusted on the way back in" discipline as the
//! result-store blob format.

use crate::flags::Cond;
use crate::inst::{AddrMode, Inst, Src2};
use crate::op::{Op, Width};
use crate::reg::{Reg, NUM_FP_REGS, NUM_INT_REGS};

/// Magic prefix of every streaming trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"TVPDYNI\x01";

/// Trace wire-format version. Bump whenever the record or frame
/// encoding changes shape; decoders reject every other version.
pub const TRACE_SCHEMA: u32 = 1;

/// Size of the file header (magic + schema).
pub const FILE_HEADER_LEN: usize = 8 + 4;

/// Marker of a records chunk (`b"CHK1"` little-endian).
pub const CHUNK_MARKER: u32 = u32::from_le_bytes(*b"CHK1");

/// Marker of the end-of-trace terminator frame (`b"END1"`).
pub const END_MARKER: u32 = u32::from_le_bytes(*b"END1");

/// Size of a chunk frame header.
pub const CHUNK_HEADER_LEN: usize = 4 + 4 + 4 + 8 + 8;

/// Why a trace stream failed to decode. Every variant is a detectable
/// corruption (or version-skew) class; none of them is a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// Shorter than the structure being parsed — a torn write.
    TooShort {
        /// Bytes needed by the structure.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The magic prefix is wrong — not a streaming trace file.
    BadMagic,
    /// Written by a different wire-format version.
    SchemaMismatch {
        /// Schema version found in the header.
        found: u32,
    },
    /// A chunk frame starts with neither marker — lost framing.
    BadMarker {
        /// The four bytes found where a marker was expected.
        found: u32,
    },
    /// The chunk checksum does not match its payload.
    ChecksumMismatch {
        /// Checksum stored in the frame header.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// A record or frame payload does not parse.
    MalformedRecord,
    /// Sequence numbers went backwards (or repeated) across records.
    NonMonotonicSeq {
        /// The out-of-order sequence number.
        seq: u64,
        /// The sequence number it should have exceeded.
        prev: u64,
    },
    /// The stream ended without an end-of-trace terminator frame.
    MissingTerminator,
    /// The terminator's totals disagree with the records counted.
    TrailerMismatch {
        /// Total µop records the terminator declares.
        declared: u64,
        /// Records actually decoded.
        actual: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::TooShort { needed, have } => {
                write!(f, "torn stream: needed {needed} bytes, have {have}")
            }
            StreamError::BadMagic => write!(f, "bad magic: not a TVP streaming trace"),
            StreamError::SchemaMismatch { found } => {
                write!(f, "schema mismatch: trace schema {found}, decoder expects {TRACE_SCHEMA}")
            }
            StreamError::BadMarker { found } => {
                write!(f, "bad chunk marker {found:#010x}: framing lost")
            }
            StreamError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "chunk checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            StreamError::MalformedRecord => write!(f, "malformed record payload"),
            StreamError::NonMonotonicSeq { seq, prev } => {
                write!(f, "non-monotonic sequence number {seq} after {prev}")
            }
            StreamError::MissingTerminator => {
                write!(f, "stream ends without an end-of-trace terminator")
            }
            StreamError::TrailerMismatch { declared, actual } => {
                write!(f, "terminator declares {declared} records, stream holds {actual}")
            }
        }
    }
}

/// FNV-1a over a byte slice — the workspace's standard content hash
/// (same offset basis and prime as the result-store blobs and the
/// commit fingerprint).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// --------------------------------------------------------------------
// varint / zigzag
// --------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed value so small magnitudes encode small.
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bounds-checked cursor over a byte slice; every read either yields
/// a value or a [`StreamError`], never a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a slice for decoding from its start.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StreamError::MalformedRecord`] at end of input.
    pub fn u8(&mut self) -> Result<u8, StreamError> {
        let b = *self.bytes.get(self.pos).ok_or(StreamError::MalformedRecord)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`StreamError::MalformedRecord`] on truncation or a varint
    /// longer than 10 bytes.
    pub fn varint(&mut self) -> Result<u64, StreamError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(StreamError::MalformedRecord)
    }

    /// Reads a zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// Propagates [`ByteReader::varint`] failures.
    pub fn svarint(&mut self) -> Result<i64, StreamError> {
        Ok(unzigzag(self.varint()?))
    }
}

// --------------------------------------------------------------------
// register / condition sub-codecs
// --------------------------------------------------------------------

const REG_NZCV: u8 = 0xFF;
const REG_FP_BASE: u8 = 64;

fn encode_reg(r: Reg) -> u8 {
    match r {
        Reg::Int(i) => i,
        Reg::Fp(i) => REG_FP_BASE + i,
        Reg::Nzcv => REG_NZCV,
    }
}

fn decode_reg(b: u8) -> Result<Reg, StreamError> {
    match b {
        REG_NZCV => Ok(Reg::Nzcv),
        i if i < NUM_INT_REGS => Ok(Reg::Int(i)),
        i if (REG_FP_BASE..REG_FP_BASE + NUM_FP_REGS).contains(&i) => Ok(Reg::Fp(i - REG_FP_BASE)),
        _ => Err(StreamError::MalformedRecord),
    }
}

fn encode_cond(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Cs => 2,
        Cond::Cc => 3,
        Cond::Mi => 4,
        Cond::Pl => 5,
        Cond::Vs => 6,
        Cond::Vc => 7,
        Cond::Hi => 8,
        Cond::Ls => 9,
        Cond::Ge => 10,
        Cond::Lt => 11,
        Cond::Gt => 12,
        Cond::Le => 13,
        Cond::Al => 14,
    }
}

fn decode_cond(b: u8) -> Result<Cond, StreamError> {
    Ok(match b {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Cs,
        3 => Cond::Cc,
        4 => Cond::Mi,
        5 => Cond::Pl,
        6 => Cond::Vs,
        7 => Cond::Vc,
        8 => Cond::Hi,
        9 => Cond::Ls,
        10 => Cond::Ge,
        11 => Cond::Lt,
        12 => Cond::Gt,
        13 => Cond::Le,
        14 => Cond::Al,
        _ => return Err(StreamError::MalformedRecord),
    })
}

// --------------------------------------------------------------------
// op codec
// --------------------------------------------------------------------

fn encode_op(op: Op, out: &mut Vec<u8>) {
    use Op::*;
    // One tag byte, plus payload bytes for the parameterized variants.
    match op {
        Add => out.push(0),
        Sub => out.push(1),
        And => out.push(2),
        Orr => out.push(3),
        Eor => out.push(4),
        Bic => out.push(5),
        Lsl => out.push(6),
        Lsr => out.push(7),
        Asr => out.push(8),
        Ror => out.push(9),
        Rbit => out.push(10),
        Clz => out.push(11),
        Ubfx { lsb, width } => {
            out.push(12);
            out.push(lsb);
            out.push(width);
        }
        Sbfx { lsb, width } => {
            out.push(13);
            out.push(lsb);
            out.push(width);
        }
        MovImm => out.push(14),
        Mov => out.push(15),
        Csel(c) => {
            out.push(16);
            out.push(encode_cond(c));
        }
        Csinc(c) => {
            out.push(17);
            out.push(encode_cond(c));
        }
        Csneg(c) => {
            out.push(18);
            out.push(encode_cond(c));
        }
        Csinv(c) => {
            out.push(19);
            out.push(encode_cond(c));
        }
        Mul => out.push(20),
        Madd => out.push(21),
        Msub => out.push(22),
        Udiv => out.push(23),
        Sdiv => out.push(24),
        Fadd => out.push(25),
        Fsub => out.push(26),
        Fmul => out.push(27),
        Fdiv => out.push(28),
        Fmadd => out.push(29),
        Fneg => out.push(30),
        Fabs => out.push(31),
        Fsqrt => out.push(32),
        Fcmp => out.push(33),
        Fmov => out.push(34),
        FmovFromInt => out.push(35),
        FmovToInt => out.push(36),
        FcvtToInt => out.push(37),
        FcvtFromInt => out.push(38),
        Load { size, signed } => {
            out.push(39);
            out.push(size | (u8::from(signed) << 4));
        }
        Store { size } => {
            out.push(40);
            out.push(size);
        }
        B => out.push(41),
        Bl => out.push(42),
        Br => out.push(43),
        Blr => out.push(44),
        Ret => out.push(45),
        BCond(c) => {
            out.push(46);
            out.push(encode_cond(c));
        }
        Cbz => out.push(47),
        Cbnz => out.push(48),
        Tbz(b) => {
            out.push(49);
            out.push(b);
        }
        Tbnz(b) => {
            out.push(50);
            out.push(b);
        }
        Nop => out.push(51),
    }
}

fn decode_mem_size(b: u8) -> Result<u8, StreamError> {
    match b {
        1 | 2 | 4 | 8 => Ok(b),
        _ => Err(StreamError::MalformedRecord),
    }
}

fn decode_op(r: &mut ByteReader<'_>) -> Result<Op, StreamError> {
    use Op::*;
    Ok(match r.u8()? {
        0 => Add,
        1 => Sub,
        2 => And,
        3 => Orr,
        4 => Eor,
        5 => Bic,
        6 => Lsl,
        7 => Lsr,
        8 => Asr,
        9 => Ror,
        10 => Rbit,
        11 => Clz,
        12 => {
            let (lsb, width) = (r.u8()?, r.u8()?);
            Ubfx { lsb, width }
        }
        13 => {
            let (lsb, width) = (r.u8()?, r.u8()?);
            Sbfx { lsb, width }
        }
        14 => MovImm,
        15 => Mov,
        16 => Csel(decode_cond(r.u8()?)?),
        17 => Csinc(decode_cond(r.u8()?)?),
        18 => Csneg(decode_cond(r.u8()?)?),
        19 => Csinv(decode_cond(r.u8()?)?),
        20 => Mul,
        21 => Madd,
        22 => Msub,
        23 => Udiv,
        24 => Sdiv,
        25 => Fadd,
        26 => Fsub,
        27 => Fmul,
        28 => Fdiv,
        29 => Fmadd,
        30 => Fneg,
        31 => Fabs,
        32 => Fsqrt,
        33 => Fcmp,
        34 => Fmov,
        35 => FmovFromInt,
        36 => FmovToInt,
        37 => FcvtToInt,
        38 => FcvtFromInt,
        39 => {
            let b = r.u8()?;
            Load { size: decode_mem_size(b & 0x0F)?, signed: b & 0x10 != 0 }
        }
        40 => Store { size: decode_mem_size(r.u8()?)? },
        41 => B,
        42 => Bl,
        43 => Br,
        44 => Blr,
        45 => Ret,
        46 => BCond(decode_cond(r.u8()?)?),
        47 => Cbz,
        48 => Cbnz,
        49 => Tbz(r.u8()?),
        50 => Tbnz(r.u8()?),
        51 => Nop,
        _ => return Err(StreamError::MalformedRecord),
    })
}

// --------------------------------------------------------------------
// inst codec
// --------------------------------------------------------------------

const F_W64: u16 = 1 << 0;
const F_SETS_FLAGS: u16 = 1 << 1;
const F_DST: u16 = 1 << 2;
const F_SRC1: u16 = 1 << 3;
const F_SRC2_REG: u16 = 1 << 4;
const F_SRC2_IMM: u16 = 1 << 5;
const F_SRC3: u16 = 1 << 6;
const F_ADDR: u16 = 1 << 7;
const F_TARGET: u16 = 1 << 8;

/// Appends the binary encoding of one micro-op.
pub fn encode_inst(inst: &Inst, out: &mut Vec<u8>) {
    let mut flags: u16 = 0;
    if inst.width == Width::W64 {
        flags |= F_W64;
    }
    if inst.sets_flags {
        flags |= F_SETS_FLAGS;
    }
    if inst.dst.is_some() {
        flags |= F_DST;
    }
    if inst.src1.is_some() {
        flags |= F_SRC1;
    }
    match inst.src2 {
        Src2::None => {}
        Src2::Reg(_) => flags |= F_SRC2_REG,
        Src2::Imm(_) => flags |= F_SRC2_IMM,
    }
    if inst.src3.is_some() {
        flags |= F_SRC3;
    }
    if inst.addr.is_some() {
        flags |= F_ADDR;
    }
    if inst.target.is_some() {
        flags |= F_TARGET;
    }
    out.extend_from_slice(&flags.to_le_bytes());
    encode_op(inst.op, out);
    if let Some(d) = inst.dst {
        out.push(encode_reg(d));
    }
    if let Some(s) = inst.src1 {
        out.push(encode_reg(s));
    }
    match inst.src2 {
        Src2::None => {}
        Src2::Reg(r) => out.push(encode_reg(r)),
        Src2::Imm(i) => write_varint(out, zigzag(i)),
    }
    if let Some(s) = inst.src3 {
        out.push(encode_reg(s));
    }
    if let Some(a) = inst.addr {
        match a {
            AddrMode::BaseDisp { base, disp } => {
                out.push(0);
                out.push(encode_reg(base));
                write_varint(out, zigzag(disp));
            }
            AddrMode::BaseIndex { base, index, shift } => {
                out.push(1);
                out.push(encode_reg(base));
                out.push(encode_reg(index));
                out.push(shift);
            }
            AddrMode::PreIndex { base, disp } => {
                out.push(2);
                out.push(encode_reg(base));
                write_varint(out, zigzag(disp));
            }
            AddrMode::PostIndex { base, disp } => {
                out.push(3);
                out.push(encode_reg(base));
                write_varint(out, zigzag(disp));
            }
        }
    }
    if let Some(t) = inst.target {
        write_varint(out, t);
    }
}

/// Decodes one micro-op (inverse of [`encode_inst`]).
///
/// # Errors
///
/// [`StreamError::MalformedRecord`] on truncation or any field that
/// does not decode to a valid register / condition / operation.
pub fn decode_inst(r: &mut ByteReader<'_>) -> Result<Inst, StreamError> {
    let lo = r.u8()?;
    let hi = r.u8()?;
    let flags = u16::from_le_bytes([lo, hi]);
    let op = decode_op(r)?;
    let mut inst = Inst::new(op);
    inst.width = if flags & F_W64 != 0 { Width::W64 } else { Width::W32 };
    inst.sets_flags = flags & F_SETS_FLAGS != 0;
    if flags & F_DST != 0 {
        inst.dst = Some(decode_reg(r.u8()?)?);
    }
    if flags & F_SRC1 != 0 {
        inst.src1 = Some(decode_reg(r.u8()?)?);
    }
    if flags & F_SRC2_REG != 0 && flags & F_SRC2_IMM != 0 {
        return Err(StreamError::MalformedRecord);
    }
    if flags & F_SRC2_REG != 0 {
        inst.src2 = Src2::Reg(decode_reg(r.u8()?)?);
    } else if flags & F_SRC2_IMM != 0 {
        inst.src2 = Src2::Imm(r.svarint()?);
    }
    if flags & F_SRC3 != 0 {
        inst.src3 = Some(decode_reg(r.u8()?)?);
    }
    if flags & F_ADDR != 0 {
        inst.addr = Some(match r.u8()? {
            0 => AddrMode::BaseDisp { base: decode_reg(r.u8()?)?, disp: r.svarint()? },
            1 => {
                let base = decode_reg(r.u8()?)?;
                let index = decode_reg(r.u8()?)?;
                AddrMode::BaseIndex { base, index, shift: r.u8()? }
            }
            2 => AddrMode::PreIndex { base: decode_reg(r.u8()?)?, disp: r.svarint()? },
            3 => AddrMode::PostIndex { base: decode_reg(r.u8()?)?, disp: r.svarint()? },
            _ => return Err(StreamError::MalformedRecord),
        });
    }
    if flags & F_TARGET != 0 {
        inst.target = Some(r.varint()?);
    }
    Ok(inst)
}

// --------------------------------------------------------------------
// container framing
// --------------------------------------------------------------------

/// Kind of a chunk frame.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChunkKind {
    /// Carries `records` encoded µops.
    Records,
    /// End-of-trace terminator (totals in the payload).
    End,
}

/// A parsed chunk frame header. The payload follows the header
/// verbatim; [`verify_chunk`] checks it against `checksum`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Records chunk or terminator.
    pub kind: ChunkKind,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Number of records in the payload (0 for the terminator).
    pub records: u32,
    /// Sequence number of the first record (terminator: total µops).
    pub first_seq: u64,
    /// FNV-1a over the payload bytes.
    pub checksum: u64,
}

/// The file header bytes (magic + schema).
#[must_use]
pub fn file_header_bytes() -> [u8; FILE_HEADER_LEN] {
    let mut out = [0u8; FILE_HEADER_LEN];
    out[..8].copy_from_slice(&TRACE_MAGIC);
    out[8..].copy_from_slice(&TRACE_SCHEMA.to_le_bytes());
    out
}

/// Parses and validates the file header.
///
/// # Errors
///
/// [`StreamError::TooShort`], [`StreamError::BadMagic`] or
/// [`StreamError::SchemaMismatch`].
pub fn parse_file_header(bytes: &[u8]) -> Result<(), StreamError> {
    if bytes.len() < FILE_HEADER_LEN {
        return Err(StreamError::TooShort { needed: FILE_HEADER_LEN, have: bytes.len() });
    }
    if bytes[..8] != TRACE_MAGIC {
        return Err(StreamError::BadMagic);
    }
    let schema = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if schema != TRACE_SCHEMA {
        return Err(StreamError::SchemaMismatch { found: schema });
    }
    Ok(())
}

/// Encodes a chunk frame header.
#[must_use]
pub fn chunk_header_bytes(
    kind: ChunkKind,
    records: u32,
    first_seq: u64,
    payload: &[u8],
) -> [u8; CHUNK_HEADER_LEN] {
    let marker = match kind {
        ChunkKind::Records => CHUNK_MARKER,
        ChunkKind::End => END_MARKER,
    };
    let mut out = [0u8; CHUNK_HEADER_LEN];
    out[0..4].copy_from_slice(&marker.to_le_bytes());
    out[4..8].copy_from_slice(&u32::try_from(payload.len()).expect("chunk fits u32").to_le_bytes());
    out[8..12].copy_from_slice(&records.to_le_bytes());
    out[12..20].copy_from_slice(&first_seq.to_le_bytes());
    out[20..28].copy_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Parses a chunk frame header.
///
/// # Errors
///
/// [`StreamError::TooShort`] or [`StreamError::BadMarker`].
pub fn parse_chunk_header(bytes: &[u8]) -> Result<ChunkHeader, StreamError> {
    if bytes.len() < CHUNK_HEADER_LEN {
        return Err(StreamError::TooShort { needed: CHUNK_HEADER_LEN, have: bytes.len() });
    }
    let marker = u32::from_le_bytes(bytes[0..4].try_into().expect("4-byte slice"));
    let kind = match marker {
        CHUNK_MARKER => ChunkKind::Records,
        END_MARKER => ChunkKind::End,
        found => return Err(StreamError::BadMarker { found }),
    };
    Ok(ChunkHeader {
        kind,
        payload_len: u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice")),
        records: u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice")),
        first_seq: u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice")),
        checksum: u64::from_le_bytes(bytes[20..28].try_into().expect("8-byte slice")),
    })
}

/// Verifies a chunk payload against its header checksum.
///
/// # Errors
///
/// [`StreamError::TooShort`] when the payload is shorter than the
/// header declares, [`StreamError::ChecksumMismatch`] on corruption.
pub fn verify_chunk(header: &ChunkHeader, payload: &[u8]) -> Result<(), StreamError> {
    if payload.len() < header.payload_len as usize {
        return Err(StreamError::TooShort {
            needed: header.payload_len as usize,
            have: payload.len(),
        });
    }
    let computed = fnv1a(&payload[..header.payload_len as usize]);
    if computed != header.checksum {
        return Err(StreamError::ChecksumMismatch { stored: header.checksum, computed });
    }
    Ok(())
}

/// Builds the terminator frame: an `End` chunk whose payload carries
/// the total µop-record and architectural-instruction counts.
#[must_use]
pub fn end_frame(total_records: u64, total_arch_insts: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(20);
    write_varint(&mut payload, total_records);
    write_varint(&mut payload, total_arch_insts);
    let mut out = Vec::with_capacity(CHUNK_HEADER_LEN + payload.len());
    out.extend_from_slice(&chunk_header_bytes(ChunkKind::End, 0, total_records, &payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes the terminator payload back into
/// `(total_records, total_arch_insts)`.
///
/// # Errors
///
/// [`StreamError::MalformedRecord`] when the payload does not hold
/// exactly two varints.
pub fn parse_end_payload(payload: &[u8]) -> Result<(u64, u64), StreamError> {
    let mut r = ByteReader::new(payload);
    let records = r.varint()?;
    let arch_insts = r.varint()?;
    if !r.exhausted() {
        return Err(StreamError::MalformedRecord);
    }
    Ok((records, arch_insts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::build;
    use crate::reg::x;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut r = ByteReader::new(&out);
            assert_eq!(r.varint().expect("decodes"), v);
            assert!(r.exhausted());
        }
    }

    #[test]
    fn zigzag_roundtrip_and_small_magnitudes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert!(zigzag(-1) < 8, "small negatives encode small");
    }

    #[test]
    fn inst_roundtrip_representative_shapes() {
        let insts = [
            build::add(x(0), x(1), 5i64),
            build::movz(x(2), -3),
            build::subs(x(4), x(5), x(6)),
            build::ldr(x(7), AddrMode::BaseDisp { base: x(8), disp: -16 }),
            build::str(x(9), AddrMode::BaseIndex { base: x(10), index: x(11), shift: 3 }),
            build::madd(x(0), x(1), x(2), x(3)),
            build::csel(x(1), x(2), x(3), Cond::Lt),
            build::fadd(crate::reg::v(0), crate::reg::v(1), crate::reg::v(2)),
            build::nop(),
        ];
        for inst in insts {
            let mut bytes = Vec::new();
            encode_inst(&inst, &mut bytes);
            let mut r = ByteReader::new(&bytes);
            let got = decode_inst(&mut r).expect("decodes");
            assert!(r.exhausted(), "no trailing bytes for {inst}");
            assert_eq!(got, inst);
        }
    }

    #[test]
    fn chunk_header_roundtrip_and_corruption() {
        let payload = b"hello chunk payload";
        let bytes = chunk_header_bytes(ChunkKind::Records, 3, 42, payload);
        let hdr = parse_chunk_header(&bytes).expect("parses");
        assert_eq!(hdr.kind, ChunkKind::Records);
        assert_eq!(hdr.records, 3);
        assert_eq!(hdr.first_seq, 42);
        verify_chunk(&hdr, payload).expect("checksum holds");
        let mut bad = payload.to_vec();
        bad[4] ^= 0x10;
        assert!(matches!(verify_chunk(&hdr, &bad), Err(StreamError::ChecksumMismatch { .. })));
    }

    #[test]
    fn file_header_and_schema_skew() {
        let hdr = file_header_bytes();
        parse_file_header(&hdr).expect("valid header");
        let mut skew = hdr;
        skew[8] ^= 0x01;
        assert!(matches!(parse_file_header(&skew), Err(StreamError::SchemaMismatch { .. })));
        assert_eq!(parse_file_header(b"nope"), Err(StreamError::TooShort { needed: 12, have: 4 }));
        let mut foreign = hdr;
        foreign[0] = b'X';
        assert_eq!(parse_file_header(&foreign), Err(StreamError::BadMagic));
    }

    #[test]
    fn end_frame_roundtrip() {
        let frame = end_frame(1_000_000, 700_000);
        let hdr = parse_chunk_header(&frame).expect("parses");
        assert_eq!(hdr.kind, ChunkKind::End);
        let payload = &frame[CHUNK_HEADER_LEN..];
        verify_chunk(&hdr, payload).expect("checksum holds");
        assert_eq!(parse_end_payload(payload).expect("parses"), (1_000_000, 700_000));
    }
}
