//! Property-based tests of the streaming trace codec primitives: the
//! varint/zigzag layer, the instruction codec and the chunk framing.
//!
//! The invariants that make the on-disk DynInst format trustworthy:
//! round-trips are *byte-identical* (encode → decode → re-encode
//! yields the same bytes, so the format is canonical), and any torn or
//! bit-flipped chunk is caught by the checksum instead of decoding to
//! a wrong instruction.

use proptest::collection;
use proptest::prelude::*;
use tvp_isa::flags::Cond;
use tvp_isa::inst::{build, AddrMode, Inst};
use tvp_isa::op::Op;
use tvp_isa::reg::{x, Reg};
use tvp_isa::stream::{
    chunk_header_bytes, decode_inst, encode_inst, parse_chunk_header, unzigzag, verify_chunk,
    write_varint, zigzag, ByteReader, ChunkKind, StreamError, CHUNK_HEADER_LEN,
};

/// Any general-purpose register except the hardwired zero (builders
/// reject xzr destinations for some shapes; sources are fine).
fn gpr() -> impl Strategy<Value = Reg> {
    (0u8..31).prop_map(x)
}

fn cond() -> impl Strategy<Value = Cond> {
    const CONDS: [Cond; 8] =
        [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Hi, Cond::Ls, Cond::Mi, Cond::Al];
    (0usize..CONDS.len()).prop_map(|i| CONDS[i])
}

fn mem_size() -> impl Strategy<Value = u8> {
    const SIZES: [u8; 4] = [1, 2, 4, 8];
    (0usize..SIZES.len()).prop_map(|i| SIZES[i])
}

fn addr_mode() -> impl Strategy<Value = AddrMode> {
    prop_oneof![
        (gpr(), any::<i32>()).prop_map(|(base, d)| AddrMode::BaseDisp { base, disp: i64::from(d) }),
        (gpr(), gpr(), 0u8..5).prop_map(|(base, index, shift)| AddrMode::BaseIndex {
            base,
            index,
            shift
        }),
        (gpr(), any::<i16>()).prop_map(|(base, d)| AddrMode::PreIndex { base, disp: i64::from(d) }),
        (gpr(), any::<i16>())
            .prop_map(|(base, d)| AddrMode::PostIndex { base, disp: i64::from(d) }),
    ]
}

/// A strategy over every instruction shape the codec distinguishes:
/// ALU reg/imm forms, flag-setters, bitfield extracts (extra lsb/width
/// bytes), conditional selects (extra cond byte), sized loads/stores
/// with every addressing mode, and branches (target varint, cond/bit
/// payload bytes).
fn inst() -> impl Strategy<Value = Inst> {
    let alu_reg = (gpr(), gpr(), gpr(), any::<bool>()).prop_map(|(d, a, b, w32f)| {
        let i = build::add(d, a, b);
        if w32f {
            build::w32(i)
        } else {
            i
        }
    });
    let alu_imm =
        (gpr(), gpr(), any::<i32>()).prop_map(|(d, a, imm)| build::sub(d, a, i64::from(imm)));
    let flag_setter = (gpr(), gpr(), gpr()).prop_map(|(d, a, b)| build::adds(d, a, b));
    let compare = (gpr(), any::<i32>()).prop_map(|(a, imm)| build::cmp(a, i64::from(imm)));
    let bitfield = (gpr(), gpr(), 0u8..56, 1u8..8)
        .prop_map(|(d, a, lsb, width)| build::ubfx(d, a, lsb, width));
    let select = (gpr(), gpr(), gpr(), cond()).prop_map(|(d, a, b, c)| build::csel(d, a, b, c));
    let wide_move = (gpr(), any::<u16>()).prop_map(|(d, imm)| build::movz(d, i64::from(imm)));
    let load = (gpr(), addr_mode(), mem_size(), any::<bool>())
        .prop_map(|(d, am, size, signed)| build::ldr_sized(d, am, size, signed));
    let store =
        (gpr(), addr_mode(), mem_size()).prop_map(|(s, am, size)| build::str_sized(s, am, size));
    let madd = (gpr(), gpr(), gpr(), gpr()).prop_map(|(d, a, b, c)| build::madd(d, a, b, c));
    let bcond = (cond(), any::<u32>()).prop_map(|(c, t)| {
        let mut i = Inst::new(Op::BCond(c));
        i.target = Some(u64::from(t));
        i
    });
    let tbz = (gpr(), 0u8..64, any::<u32>(), any::<bool>()).prop_map(|(r, bit, t, nz)| {
        let mut i = Inst::new(if nz { Op::Tbnz(bit) } else { Op::Tbz(bit) });
        i.src1 = Some(r);
        i.target = Some(u64::from(t));
        i
    });
    let nop = (0u8..1).prop_map(|_| build::nop());
    prop_oneof![
        alu_reg,
        alu_imm,
        flag_setter,
        compare,
        bitfield,
        select,
        wide_move,
        load,
        store,
        madd,
        bcond,
        tbz,
        nop,
    ]
}

proptest! {
    #[test]
    fn varint_roundtrips_any_u64(v: u64) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut r = ByteReader::new(&buf);
        prop_assert_eq!(r.varint(), Ok(v));
        prop_assert!(r.exhausted());
    }

    #[test]
    fn zigzag_roundtrips_any_i64(v: i64) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
        // Small magnitudes map to small codes — the property that makes
        // delta encoding compact.
        if (-64..64).contains(&v) {
            prop_assert!(zigzag(v) < 128);
        }
    }

    #[test]
    fn inst_roundtrip_is_byte_identical(i in inst()) {
        let mut bytes = Vec::new();
        encode_inst(&i, &mut bytes);
        let mut r = ByteReader::new(&bytes);
        let back = decode_inst(&mut r).expect("clean encoding decodes");
        prop_assert!(r.exhausted(), "decoder must consume exactly the encoding");
        prop_assert_eq!(back, i, "decoded instruction differs");
        // Canonical form: re-encoding yields the same bytes.
        let mut again = Vec::new();
        encode_inst(&back, &mut again);
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn truncated_inst_never_decodes_to_a_wrong_inst(i in inst()) {
        let mut bytes = Vec::new();
        encode_inst(&i, &mut bytes);
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            match decode_inst(&mut r) {
                Err(_) => {}
                Ok(got) => {
                    // A prefix that happens to parse (e.g. a shorter
                    // varint) must not masquerade as the original.
                    prop_assert_ne!(got, i, "cut at {} decoded to the original", cut);
                }
            }
        }
    }

    #[test]
    fn chunk_header_roundtrips(
        records in 1u32..1_000_000,
        first_seq: u64,
        payload in collection::vec(any::<u8>(), 0..256),
    ) {
        let header = chunk_header_bytes(ChunkKind::Records, records, first_seq, &payload);
        let parsed = parse_chunk_header(&header).expect("header parses");
        prop_assert_eq!(parsed.kind, ChunkKind::Records);
        prop_assert_eq!(parsed.records, records);
        prop_assert_eq!(parsed.first_seq, first_seq);
        prop_assert_eq!(parsed.payload_len as usize, payload.len());
        prop_assert!(verify_chunk(&parsed, &payload).is_ok());
    }

    #[test]
    fn any_payload_bit_flip_fails_the_chunk_checksum(
        payload in collection::vec(any::<u8>(), 1..512),
        flip_pos: usize,
        flip_bit in 0u8..8,
    ) {
        let header = chunk_header_bytes(ChunkKind::Records, 1, 0, &payload);
        let parsed = parse_chunk_header(&header).expect("header parses");
        let mut bad = payload.clone();
        let pos = flip_pos % bad.len();
        bad[pos] ^= 1 << flip_bit;
        match verify_chunk(&parsed, &bad) {
            Err(StreamError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "flip at {pos} not caught: {other:?}"),
        }
    }

    #[test]
    fn truncated_chunk_header_is_torn_not_garbage(
        payload in collection::vec(any::<u8>(), 0..64),
        cut in 0usize..CHUNK_HEADER_LEN,
    ) {
        let header = chunk_header_bytes(ChunkKind::Records, 1, 7, &payload);
        match parse_chunk_header(&header[..cut]) {
            Err(StreamError::TooShort { .. }) => {}
            other => prop_assert!(false, "cut at {cut}: expected TooShort, got {other:?}"),
        }
    }
}
