//! Property-based tests of the functional semantics — the single
//! source of architectural truth for the whole simulator.

use proptest::prelude::*;
use tvp_isa::exec::{exec_alu, Operands};
use tvp_isa::flags::{Cond, Nzcv};
use tvp_isa::op::{Op, Width};

fn ops(a: u64, b: u64) -> Operands {
    Operands { a, b, ..Default::default() }
}

proptest! {
    #[test]
    fn w32_equals_w64_of_masked_inputs(a: u64, b: u64) {
        // For bitwise/arithmetic ops, the W32 result equals the W64
        // result computed on 32-bit-masked inputs, masked to 32 bits.
        for op in [Op::Add, Op::Sub, Op::And, Op::Orr, Op::Eor, Op::Bic, Op::Mul] {
            let w32 = exec_alu(op, Width::W32, false, ops(a, b)).value;
            let w64 = exec_alu(op, Width::W64, false, ops(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF)).value;
            prop_assert_eq!(w32, w64 & 0xFFFF_FFFF, "{}", op);
            prop_assert!(w32 <= u64::from(u32::MAX), "{} leaks above 32 bits", op);
        }
    }

    #[test]
    fn add_sub_are_inverses(a: u64, b: u64) {
        let sum = exec_alu(Op::Add, Width::W64, false, ops(a, b)).value;
        let back = exec_alu(Op::Sub, Width::W64, false, ops(sum, b)).value;
        prop_assert_eq!(back, a);
    }

    #[test]
    fn commutative_ops(a: u64, b: u64) {
        for op in [Op::Add, Op::And, Op::Orr, Op::Eor, Op::Mul] {
            let ab = exec_alu(op, Width::W64, false, ops(a, b)).value;
            let ba = exec_alu(op, Width::W64, false, ops(b, a)).value;
            prop_assert_eq!(ab, ba, "{}", op);
        }
    }

    #[test]
    fn zero_identities(a: u64) {
        // The algebraic facts Table 1 (SpSR) relies on.
        prop_assert_eq!(exec_alu(Op::Add, Width::W64, false, ops(a, 0)).value, a);
        prop_assert_eq!(exec_alu(Op::Orr, Width::W64, false, ops(a, 0)).value, a);
        prop_assert_eq!(exec_alu(Op::Eor, Width::W64, false, ops(a, 0)).value, a);
        prop_assert_eq!(exec_alu(Op::And, Width::W64, false, ops(a, 0)).value, 0);
        prop_assert_eq!(exec_alu(Op::And, Width::W64, false, ops(0, a)).value, 0);
        prop_assert_eq!(exec_alu(Op::Sub, Width::W64, false, ops(a, 0)).value, a);
        prop_assert_eq!(exec_alu(Op::Bic, Width::W64, false, ops(0, a)).value, 0);
        prop_assert_eq!(exec_alu(Op::Bic, Width::W64, false, ops(a, 0)).value, a);
        prop_assert_eq!(exec_alu(Op::Lsl, Width::W64, false, ops(0, a & 63)).value, 0);
        prop_assert_eq!(exec_alu(Op::Eor, Width::W64, false, ops(a, a)).value, 0);
    }

    #[test]
    fn subs_flags_encode_unsigned_and_signed_comparisons(a: u64, b: u64) {
        let f = exec_alu(Op::Sub, Width::W64, true, ops(a, b)).flags.unwrap();
        prop_assert_eq!(f.z, a == b);
        prop_assert_eq!(f.c, a >= b, "carry = no borrow");
        // Signed comparison through N ^ V.
        prop_assert_eq!(Cond::Lt.eval(f), (a as i64) < (b as i64));
        prop_assert_eq!(Cond::Ge.eval(f), (a as i64) >= (b as i64));
        prop_assert_eq!(Cond::Hi.eval(f), a > b);
        prop_assert_eq!(Cond::Ls.eval(f), a <= b);
    }

    #[test]
    fn csel_family_consistency(a: u64, b: u64, bits in 0u8..16) {
        let flags = Nzcv::unpack(bits);
        let operands = Operands { a, b, flags, ..Default::default() };
        for cond in [Cond::Eq, Cond::Lt, Cond::Hi, Cond::Mi] {
            let sel = exec_alu(Op::Csel(cond), Width::W64, false, operands).value;
            prop_assert_eq!(sel, if cond.eval(flags) { a } else { b });
            let inc = exec_alu(Op::Csinc(cond), Width::W64, false, operands).value;
            prop_assert_eq!(inc, if cond.eval(flags) { a } else { b.wrapping_add(1) });
            let neg = exec_alu(Op::Csneg(cond), Width::W64, false, operands).value;
            prop_assert_eq!(neg, if cond.eval(flags) { a } else { b.wrapping_neg() });
        }
    }

    #[test]
    fn shifts_match_reference(a: u64, sh in 0u64..64) {
        prop_assert_eq!(exec_alu(Op::Lsl, Width::W64, false, ops(a, sh)).value, a << sh);
        prop_assert_eq!(exec_alu(Op::Lsr, Width::W64, false, ops(a, sh)).value, a >> sh);
        prop_assert_eq!(
            exec_alu(Op::Asr, Width::W64, false, ops(a, sh)).value,
            ((a as i64) >> sh) as u64
        );
        prop_assert_eq!(exec_alu(Op::Ror, Width::W64, false, ops(a, sh)).value, a.rotate_right(sh as u32));
    }

    #[test]
    fn rbit_is_involutive(a: u64) {
        let once = exec_alu(Op::Rbit, Width::W64, false, ops(a, 0)).value;
        let twice = exec_alu(Op::Rbit, Width::W64, false, ops(once, 0)).value;
        prop_assert_eq!(twice, a);
    }

    #[test]
    fn ubfx_matches_shift_mask(a: u64, lsb in 0u8..56, width in 1u8..8) {
        let got = exec_alu(Op::Ubfx { lsb, width }, Width::W64, false, ops(a, 0)).value;
        prop_assert_eq!(got, (a >> lsb) & ((1 << width) - 1));
    }

    #[test]
    fn division_never_traps(a: u64, b: u64) {
        let q = exec_alu(Op::Udiv, Width::W64, false, ops(a, b)).value;
        prop_assert_eq!(q, a.checked_div(b).unwrap_or(0));
        // Signed with arbitrary values (covers MIN/-1).
        let _ = exec_alu(Op::Sdiv, Width::W64, false, ops(a, b));
    }

    #[test]
    fn cond_and_inverse_partition_flag_space(bits in 0u8..16) {
        let f = Nzcv::unpack(bits);
        for cond in Cond::ALL {
            if cond != Cond::Al {
                prop_assert_ne!(cond.eval(f), cond.invert().eval(f));
            }
        }
    }
}
