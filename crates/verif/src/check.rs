//! Invariant checkers over [`PipelineSnapshot`]s.
//!
//! Each checker is a pure function from snapshot to violations, wrapped
//! in a [`PipelineAuditor`] so the pipeline can run a uniform suite.
//! The commit-order auditor is the one stateful member: it remembers
//! the previous audit's commit frontier to prove monotonicity.

use crate::snapshot::{MapEntry, PipelineSnapshot, RegClass, RegClassSnapshot};
use crate::violation::Violation;

/// A cycle-level invariant auditor.
///
/// Auditors may keep state across audits (e.g. the commit frontier);
/// `audit` returns every violation found in the given snapshot.
pub trait PipelineAuditor {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;
    /// Checks the snapshot, returning all violations found.
    fn audit(&mut self, snap: &PipelineSnapshot) -> Vec<Violation>;
}

/// Everything one audit pass found, tagged with the auditor that found
/// it and the cycle it was observed at.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// `(cycle, auditor name, violation)` triples.
    pub violations: Vec<(u64, &'static str, Violation)>,
}

impl AuditReport {
    /// True when no auditor reported anything.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders every violation, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        self.violations
            .iter()
            .map(|(cycle, who, v)| format!("[cycle {cycle}] {who}: {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// One-line summary of the *first* (root-cause) violation plus the
    /// total count — the right shape for a process exit message, where
    /// the full [`AuditReport::render`] dump would drown the cause.
    #[must_use]
    pub fn first_violation_summary(&self) -> Option<String> {
        let (cycle, who, v) = self.violations.first()?;
        let rest = self.violations.len() - 1;
        Some(if rest == 0 {
            format!("[cycle {cycle}] {who}: {v}")
        } else {
            format!("[cycle {cycle}] {who}: {v} (+{rest} more)")
        })
    }
}

/// The standard auditor suite the pipeline runs under the `verif`
/// feature: register conservation, rename-map consistency, occupancy
/// bounds, commit monotonicity and scheduler wakeup consistency.
#[must_use]
pub fn standard_suite() -> Vec<Box<dyn PipelineAuditor>> {
    vec![
        Box::new(RegisterConservation),
        Box::new(RenameConsistency),
        Box::new(OccupancyBounds),
        Box::new(CommitMonotonicity::default()),
        Box::new(SchedulerConsistency),
    ]
}

/// Runs `auditors` over one snapshot, accumulating into `report`.
pub fn run_suite(
    auditors: &mut [Box<dyn PipelineAuditor>],
    snap: &PipelineSnapshot,
    report: &mut AuditReport,
) {
    for a in auditors.iter_mut() {
        for v in a.audit(snap) {
            report.violations.push((snap.cycle, a.name(), v));
        }
    }
}

/// Counts, per physical register of `class`, how many rename-map
/// entries and in-flight destinations name it.
fn count_references(snap: &PipelineSnapshot, class: RegClass, total: u16) -> Vec<u32> {
    let mut counts = vec![0u32; usize::from(total)];
    let mut bump = |e: &MapEntry| {
        if e.class == class {
            if let Some(p) = e.name.reg() {
                if p < total {
                    counts[usize::from(p)] += 1;
                }
            }
        }
    };
    for e in &snap.crat {
        bump(e);
    }
    for rob in &snap.rob {
        for e in &rob.new_names {
            bump(e);
        }
    }
    counts
}

/// Physical-register conservation: the free list, the committed map and
/// the in-flight destinations must exactly partition the allocatable
/// register file — no leaks, no double allocation, and reference counts
/// that match the references that actually exist.
pub struct RegisterConservation;

impl RegisterConservation {
    fn check_class(&self, snap: &PipelineSnapshot, cs: &RegClassSnapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        let total = usize::from(cs.total);
        let mut free = vec![false; total];
        for &p in &cs.free {
            if p < cs.hardwired || usize::from(p) >= total {
                out.push(Violation::FreeListOutOfRange { class: cs.class, preg: p });
                continue;
            }
            if free[usize::from(p)] {
                out.push(Violation::FreeListDuplicate { class: cs.class, preg: p });
            }
            free[usize::from(p)] = true;
        }
        let referenced = count_references(snap, cs.class, cs.total);
        for p in cs.hardwired..cs.total {
            let idx = usize::from(p);
            let rc = cs.ref_counts.get(idx).copied().unwrap_or(0);
            let mapped = referenced[idx];
            if free[idx] {
                if rc != 0 {
                    out.push(Violation::FreedButReferenced {
                        class: cs.class,
                        preg: p,
                        ref_count: rc,
                    });
                }
                if mapped != 0 {
                    out.push(Violation::FreedButMapped { class: cs.class, preg: p, mapped });
                }
            } else {
                if rc == 0 && mapped == 0 {
                    out.push(Violation::LeakedRegister { class: cs.class, preg: p, ref_count: rc });
                }
                if rc != mapped {
                    out.push(Violation::RefCountMismatch {
                        class: cs.class,
                        preg: p,
                        ref_count: rc,
                        expected: mapped,
                    });
                }
            }
        }
        out
    }
}

impl PipelineAuditor for RegisterConservation {
    fn name(&self) -> &'static str {
        "register-conservation"
    }

    fn audit(&mut self, snap: &PipelineSnapshot) -> Vec<Violation> {
        let mut out = self.check_class(snap, &snap.int);
        out.extend(self.check_class(snap, &snap.fp));
        out
    }
}

/// Rename-map consistency: replaying every in-flight destination write
/// (oldest first) over the committed map must reproduce the speculative
/// map, and every name in either map must be structurally valid.
pub struct RenameConsistency;

impl PipelineAuditor for RenameConsistency {
    fn name(&self) -> &'static str {
        "rename-consistency"
    }

    fn audit(&mut self, snap: &PipelineSnapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        let well_formed = |e: &MapEntry| {
            let total = snap.class(e.class).total;
            e.name.is_well_formed(total)
        };
        for e in &snap.crat {
            if !well_formed(e) {
                out.push(Violation::BadName { table: "crat", dense: e.dense, name: e.name });
            }
        }
        for e in &snap.rat {
            if !well_formed(e) {
                out.push(Violation::BadName { table: "rat", dense: e.dense, name: e.name });
            }
        }
        // Replay: committed map + in-flight destination writes, oldest
        // first, must land exactly on the speculative map.
        let mut replay: Vec<MapEntry> = snap.crat.clone();
        for rob in &snap.rob {
            for w in &rob.new_names {
                if !well_formed(w) {
                    out.push(Violation::BadName { table: "rob", dense: w.dense, name: w.name });
                }
                if let Some(slot) = replay.iter_mut().find(|e| e.dense == w.dense) {
                    slot.name = w.name;
                    slot.class = w.class;
                }
            }
        }
        for (expect, actual) in replay.iter().zip(snap.rat.iter()) {
            if expect.name != actual.name {
                out.push(Violation::RatMismatch {
                    dense: actual.dense,
                    expected: expect.name,
                    actual: actual.name,
                });
            }
        }
        out
    }
}

/// Occupancy bounds: every queue within capacity, the cached IQ counter
/// consistent with the ROB, ages strictly increasing, and every
/// load/store-queue entry backed by a live ROB entry.
pub struct OccupancyBounds;

fn check_ascending(resource: &'static str, seqs: &[u64], out: &mut Vec<Violation>) {
    for w in seqs.windows(2) {
        if w[1] <= w[0] {
            out.push(Violation::SequenceOrder { resource, seq: w[1] });
        }
    }
}

impl PipelineAuditor for OccupancyBounds {
    fn name(&self) -> &'static str {
        "occupancy-bounds"
    }

    fn audit(&mut self, snap: &PipelineSnapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        let l = snap.limits;
        for (resource, occupancy, limit) in [
            ("rob", snap.rob.len(), l.rob),
            ("iq", snap.iq_count, l.iq),
            ("lq", snap.lq_seqs.len(), l.lq),
            ("sq", snap.sq_seqs.len(), l.sq),
        ] {
            if occupancy > limit {
                out.push(Violation::OccupancyExceeded { resource, occupancy, limit });
            }
        }
        let counted = snap.rob.iter().filter(|e| e.in_iq).count();
        if counted != snap.iq_count {
            out.push(Violation::IqCountMismatch { counted, tracked: snap.iq_count });
        }
        let rob_seqs: Vec<u64> = snap.rob.iter().map(|e| e.seq).collect();
        check_ascending("rob", &rob_seqs, &mut out);
        check_ascending("lq", &snap.lq_seqs, &mut out);
        check_ascending("sq", &snap.sq_seqs, &mut out);
        for (resource, seqs) in [("lq", &snap.lq_seqs), ("sq", &snap.sq_seqs)] {
            for &seq in seqs {
                if !rob_seqs.contains(&seq) {
                    out.push(Violation::OrphanQueueEntry { resource, seq });
                }
            }
        }
        out
    }
}

/// Scheduler wakeup consistency: the event-driven ready set must be a
/// *tight-enough* superset of the truth. Every µop whose full issue
/// predicate holds (computed by the pipeline from operand `ready_at`
/// ground truth, not from the event machinery) must be in the ready
/// set — a miss is a lost wakeup, the failure mode event-driven
/// schedulers add over polling ones. Conversely every ready-set entry
/// must correspond to a live, still-waiting ROB entry — stale
/// candidates are tolerated *within* a cycle but select retires them,
/// so at audit boundaries a leftover is a leak.
pub struct SchedulerConsistency;

impl PipelineAuditor for SchedulerConsistency {
    fn name(&self) -> &'static str {
        "scheduler-consistency"
    }

    fn audit(&mut self, snap: &PipelineSnapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        for e in &snap.rob {
            if e.issuable && !snap.ready_seqs.contains(&e.seq) {
                out.push(Violation::MissedWakeup { seq: e.seq });
            }
        }
        for &seq in &snap.ready_seqs {
            let live = snap.rob.iter().any(|e| e.seq == seq && e.in_iq && !e.issued);
            if !live {
                out.push(Violation::GhostReady { seq });
            }
        }
        out
    }
}

/// Commit monotonicity: retirement only moves forward, and nothing in
/// flight is at or behind the commit frontier.
#[derive(Default)]
pub struct CommitMonotonicity {
    prev_retired: u64,
    prev_committed: Option<u64>,
}

impl PipelineAuditor for CommitMonotonicity {
    fn name(&self) -> &'static str {
        "commit-monotonicity"
    }

    fn audit(&mut self, snap: &PipelineSnapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        if snap.uops_retired < self.prev_retired {
            out.push(Violation::CommitRegression {
                prev: self.prev_retired,
                now: snap.uops_retired,
            });
        }
        if let (Some(prev), Some(now)) = (self.prev_committed, snap.committed_seq) {
            if now < prev {
                out.push(Violation::CommitRegression { prev, now });
            }
        }
        if let (Some(committed), Some(front)) = (snap.committed_seq, snap.rob.first()) {
            if front.seq <= committed {
                out.push(Violation::CommitOverlap { committed, rob_front: front.seq });
            }
        }
        self.prev_retired = snap.uops_retired;
        if snap.committed_seq.is_some() {
            self.prev_committed = snap.committed_seq;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{QueueLimits, RobSnapshot, SnapName};

    /// A minimal healthy machine: 2 architectural registers per class,
    /// 6 physical registers (1 hardwired), one in-flight µop.
    fn healthy() -> PipelineSnapshot {
        let class_snap = |class| RegClassSnapshot {
            class,
            total: 6,
            hardwired: 1,
            // p1, p2 live in the maps below; p3 is the in-flight dest.
            free: vec![4, 5],
            ref_counts: vec![0, 1, 1, 1, 0, 0],
        };
        let map = |class, names: [SnapName; 2]| {
            names
                .iter()
                .enumerate()
                .map(|(dense, &name)| MapEntry { dense: dense as u16, class, name })
                .collect::<Vec<_>>()
        };
        let mut crat = map(RegClass::Int, [SnapName::Reg(1), SnapName::Reg(2)]);
        crat.extend(map(RegClass::Fp, [SnapName::Reg(1), SnapName::Reg(2)]).into_iter().map(
            |mut e| {
                e.dense += 2;
                e
            },
        ));
        let mut rat = crat.clone();
        rat[0].name = SnapName::Reg(3); // the in-flight µop's destination
        let rob = vec![RobSnapshot {
            seq: 10,
            in_iq: true,
            issued: false,
            issuable: true,
            new_names: vec![MapEntry { dense: 0, class: RegClass::Int, name: SnapName::Reg(3) }],
        }];
        let mut fp = class_snap(RegClass::Fp);
        fp.free = vec![3, 4, 5];
        fp.ref_counts = vec![0, 1, 1, 0, 0, 0];
        PipelineSnapshot {
            cycle: 100,
            int: class_snap(RegClass::Int),
            fp,
            crat,
            rat,
            rob,
            iq_count: 1,
            ready_seqs: vec![10],
            lq_seqs: vec![10],
            sq_seqs: vec![],
            limits: QueueLimits { rob: 8, iq: 4, lq: 4, sq: 4 },
            committed_seq: Some(9),
            uops_retired: 9,
        }
    }

    fn audit_all(snap: &PipelineSnapshot) -> Vec<Violation> {
        let mut report = AuditReport::default();
        run_suite(&mut standard_suite(), snap, &mut report);
        report.violations.into_iter().map(|(_, _, v)| v).collect()
    }

    #[test]
    fn first_violation_summary_names_the_root_cause() {
        let mut report = AuditReport::default();
        assert_eq!(report.first_violation_summary(), None);
        report.violations.push((7, "queues", Violation::CommitRegression { prev: 5, now: 3 }));
        let one = report.first_violation_summary().expect("one violation");
        assert!(one.starts_with("[cycle 7] queues:"), "{one}");
        assert!(!one.contains("more"), "{one}");
        report.violations.push((9, "queues", Violation::CommitRegression { prev: 5, now: 4 }));
        let two = report.first_violation_summary().expect("two violations");
        assert!(two.contains("(+1 more)"), "{two}");
    }

    #[test]
    fn healthy_snapshot_is_clean() {
        let violations = audit_all(&healthy());
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn leaked_register_is_flagged() {
        let mut snap = healthy();
        // p4 vanishes from the free list without gaining any reference.
        snap.int.free.retain(|&p| p != 4);
        let violations = audit_all(&snap);
        assert!(
            violations.contains(&Violation::LeakedRegister {
                class: RegClass::Int,
                preg: 4,
                ref_count: 0
            }),
            "got {violations:?}"
        );
    }

    #[test]
    fn double_freed_register_is_flagged() {
        let mut snap = healthy();
        // p2 is pushed back onto the free list while the CRAT still
        // maps to it and its ref count is still 1.
        snap.int.free.push(2);
        let violations = audit_all(&snap);
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::FreedButReferenced { class: RegClass::Int, preg: 2, .. }
        )));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::FreedButMapped { class: RegClass::Int, preg: 2, .. })));
    }

    #[test]
    fn duplicate_free_list_entry_is_flagged() {
        let mut snap = healthy();
        snap.int.free.push(5);
        let violations = audit_all(&snap);
        assert!(
            violations.contains(&Violation::FreeListDuplicate { class: RegClass::Int, preg: 5 })
        );
    }

    #[test]
    fn ref_count_mismatch_is_flagged() {
        let mut snap = healthy();
        snap.int.ref_counts[2] = 3; // CRAT references it exactly once
        let violations = audit_all(&snap);
        assert!(violations.contains(&Violation::RefCountMismatch {
            class: RegClass::Int,
            preg: 2,
            ref_count: 3,
            expected: 1
        }));
    }

    #[test]
    fn rat_divergence_is_flagged() {
        let mut snap = healthy();
        snap.rat[1].name = SnapName::Reg(5); // no in-flight write justifies this
        let violations = audit_all(&snap);
        assert!(violations.iter().any(|v| matches!(v, Violation::RatMismatch { dense: 1, .. })));
    }

    #[test]
    fn inline_constants_replay_like_registers() {
        let mut snap = healthy();
        // A zero-idiom µop maps dense 1 to an inline constant.
        snap.rat[1].name = SnapName::Inline(0);
        snap.rob.push(RobSnapshot {
            seq: 11,
            in_iq: false,
            new_names: vec![MapEntry { dense: 1, class: RegClass::Int, name: SnapName::Inline(0) }],
            ..RobSnapshot::default()
        });
        let violations = audit_all(&snap);
        assert!(violations.is_empty(), "inline names are legal: {violations:?}");
    }

    #[test]
    fn out_of_window_inline_is_flagged() {
        let mut snap = healthy();
        snap.rat[1].name = SnapName::Inline(400);
        snap.rob.push(RobSnapshot {
            seq: 11,
            in_iq: false,
            new_names: vec![MapEntry {
                dense: 1,
                class: RegClass::Int,
                name: SnapName::Inline(400),
            }],
            ..RobSnapshot::default()
        });
        let violations = audit_all(&snap);
        assert!(violations.iter().any(|v| matches!(v, Violation::BadName { .. })));
    }

    #[test]
    fn occupancy_overflow_is_flagged() {
        let mut snap = healthy();
        snap.limits.rob = 0;
        let violations = audit_all(&snap);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::OccupancyExceeded { resource: "rob", .. })));
    }

    #[test]
    fn iq_counter_drift_is_flagged() {
        let mut snap = healthy();
        snap.iq_count = 3;
        let violations = audit_all(&snap);
        assert!(violations.contains(&Violation::IqCountMismatch { counted: 1, tracked: 3 }));
    }

    #[test]
    fn orphan_lq_entry_is_flagged() {
        let mut snap = healthy();
        snap.lq_seqs.push(99);
        let violations = audit_all(&snap);
        assert!(violations.contains(&Violation::OrphanQueueEntry { resource: "lq", seq: 99 }));
    }

    #[test]
    fn missed_wakeup_is_flagged() {
        let mut snap = healthy();
        // Seq 10 is issuable but the scheduler never heard about it.
        snap.ready_seqs.clear();
        let violations = audit_all(&snap);
        assert!(violations.contains(&Violation::MissedWakeup { seq: 10 }));
    }

    #[test]
    fn ghost_ready_entry_is_flagged() {
        let mut snap = healthy();
        // Seq 99 has no ROB entry; seq 10 is waiting legitimately.
        snap.ready_seqs.push(99);
        let violations = audit_all(&snap);
        assert!(violations.contains(&Violation::GhostReady { seq: 99 }));
        assert!(!violations.contains(&Violation::GhostReady { seq: 10 }));
    }

    #[test]
    fn issued_entry_in_ready_set_is_a_ghost() {
        let mut snap = healthy();
        snap.rob[0].issued = true;
        snap.rob[0].issuable = false;
        let violations = audit_all(&snap);
        assert!(violations.contains(&Violation::GhostReady { seq: 10 }));
    }

    #[test]
    fn commit_regression_is_flagged() {
        let mut auditor = CommitMonotonicity::default();
        let mut snap = healthy();
        assert!(auditor.audit(&snap).is_empty());
        snap.uops_retired = 3; // went backwards
        let violations = auditor.audit(&snap);
        assert!(violations.contains(&Violation::CommitRegression { prev: 9, now: 3 }));
    }

    #[test]
    fn stale_rob_head_is_flagged() {
        let mut snap = healthy();
        snap.committed_seq = Some(10); // equals the ROB head seq
        let violations = audit_all(&snap);
        assert!(violations.contains(&Violation::CommitOverlap { committed: 10, rob_front: 10 }));
    }

    #[test]
    fn report_renders_one_line_per_violation() {
        let mut snap = healthy();
        snap.int.free.retain(|&p| p != 4);
        let mut report = AuditReport::default();
        run_suite(&mut standard_suite(), &snap, &mut report);
        assert!(!report.is_clean());
        assert_eq!(report.render().lines().count(), report.violations.len());
        assert!(report.render().contains("register-conservation"));
    }
}
