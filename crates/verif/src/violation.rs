//! Violation taxonomy for the verification layer.
//!
//! Every auditor and the storage-budget checker report their findings as
//! [`Violation`] values: structured, comparable and printable, so tests
//! can assert on the *kind* of defect while humans read the rendered
//! message.

use crate::snapshot::{RegClass, SnapName};
use std::fmt;

/// One invariant violation detected by an auditor.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A free-list entry is outside the allocatable physical range.
    FreeListOutOfRange {
        /// Register class.
        class: RegClass,
        /// Offending physical register.
        preg: u16,
    },
    /// A physical register appears on the free list more than once.
    FreeListDuplicate {
        /// Register class.
        class: RegClass,
        /// Offending physical register.
        preg: u16,
    },
    /// A register sits on the free list while still carrying references
    /// (double-free / premature release).
    FreedButReferenced {
        /// Register class.
        class: RegClass,
        /// Offending physical register.
        preg: u16,
        /// Its reference count.
        ref_count: u32,
    },
    /// A register sits on the free list while a rename map or in-flight
    /// µop still names it (use-after-free waiting to happen).
    FreedButMapped {
        /// Register class.
        class: RegClass,
        /// Offending physical register.
        preg: u16,
        /// Number of map/ROB references found.
        mapped: u32,
    },
    /// A register is neither free nor referenced by any rename map or
    /// in-flight µop: it has leaked out of the conservation equation.
    LeakedRegister {
        /// Register class.
        class: RegClass,
        /// Offending physical register.
        preg: u16,
        /// Its reference count.
        ref_count: u32,
    },
    /// A register's reference count disagrees with the number of rename
    /// map entries and in-flight destinations that name it.
    RefCountMismatch {
        /// Register class.
        class: RegClass,
        /// Offending physical register.
        preg: u16,
        /// Stored reference count.
        ref_count: u32,
        /// References counted from CRAT + in-flight destinations.
        expected: u32,
    },
    /// Replaying the in-flight destination writes over the committed map
    /// does not reproduce the speculative map.
    RatMismatch {
        /// Dense architectural register index.
        dense: u16,
        /// Name obtained by replaying CRAT + ROB writes.
        expected: SnapName,
        /// Name actually present in the speculative map.
        actual: SnapName,
    },
    /// A rename map holds a structurally invalid name (physical index
    /// out of range, inline constant outside the 9-bit window).
    BadName {
        /// Which table held the name (`"rat"`, `"crat"`, `"rob"`).
        table: &'static str,
        /// Dense architectural register index.
        dense: u16,
        /// The offending name.
        name: SnapName,
    },
    /// A queue or buffer exceeds its configured capacity.
    OccupancyExceeded {
        /// Resource name (`"rob"`, `"iq"`, `"lq"`, `"sq"`).
        resource: &'static str,
        /// Observed occupancy.
        occupancy: usize,
        /// Configured capacity.
        limit: usize,
    },
    /// The pipeline's cached IQ occupancy counter disagrees with the
    /// number of ROB entries flagged as waiting in the IQ.
    IqCountMismatch {
        /// Entries counted from the ROB snapshot.
        counted: usize,
        /// The pipeline's cached counter.
        tracked: usize,
    },
    /// Sequence numbers in a queue are not strictly increasing (age
    /// order corrupted).
    SequenceOrder {
        /// Resource name.
        resource: &'static str,
        /// The out-of-order sequence number.
        seq: u64,
    },
    /// A load/store-queue entry references a µop that is no longer in
    /// the ROB.
    OrphanQueueEntry {
        /// Resource name.
        resource: &'static str,
        /// The orphaned sequence number.
        seq: u64,
    },
    /// Commit went backwards between two audits.
    CommitRegression {
        /// Value at the previous audit.
        prev: u64,
        /// Value now.
        now: u64,
    },
    /// An in-flight µop is older than the commit frontier (it should
    /// have retired or been squashed).
    CommitOverlap {
        /// Sequence number of the last committed µop.
        committed: u64,
        /// Sequence number found at the ROB head.
        rob_front: u64,
    },
    /// An issuable µop (in the IQ, past dispatch, all operands ready)
    /// is missing from the scheduler's ready set: a lost wakeup that
    /// the old polling issue loop could never suffer.
    MissedWakeup {
        /// The issuable-but-not-ready sequence number.
        seq: u64,
    },
    /// The scheduler's ready set holds a sequence number with no live
    /// waiting ROB entry behind it (squashed or already issued): stale
    /// candidacy that select must have failed to retire.
    GhostReady {
        /// The ready-set entry with no waiting µop.
        seq: u64,
    },
    /// A hardware structure exceeds its Table 2 storage budget.
    BudgetOverrun {
        /// Structure name.
        name: String,
        /// Actual size in bits.
        bits: u64,
        /// Budgeted maximum in bits.
        max_bits: u64,
    },
    /// A structure reported storage but no budget is on file for it.
    UnknownStructure {
        /// Structure name.
        name: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::FreeListOutOfRange { class, preg } => {
                write!(f, "{class:?} free list holds out-of-range p{preg}")
            }
            Violation::FreeListDuplicate { class, preg } => {
                write!(f, "{class:?} free list holds p{preg} twice")
            }
            Violation::FreedButReferenced { class, preg, ref_count } => {
                write!(f, "{class:?} p{preg} is free but has ref count {ref_count}")
            }
            Violation::FreedButMapped { class, preg, mapped } => {
                write!(f, "{class:?} p{preg} is free but mapped {mapped} time(s)")
            }
            Violation::LeakedRegister { class, preg, ref_count } => {
                write!(f, "{class:?} p{preg} leaked: not free, ref count {ref_count}, unmapped")
            }
            Violation::RefCountMismatch { class, preg, ref_count, expected } => {
                write!(
                    f,
                    "{class:?} p{preg} ref count {ref_count} but {expected} reference(s) exist"
                )
            }
            Violation::RatMismatch { dense, expected, actual } => {
                write!(f, "RAT[{dense}] = {actual:?} but CRAT+ROB replay gives {expected:?}")
            }
            Violation::BadName { table, dense, name } => {
                write!(f, "{table}[{dense}] holds invalid name {name:?}")
            }
            Violation::OccupancyExceeded { resource, occupancy, limit } => {
                write!(f, "{resource} occupancy {occupancy} exceeds capacity {limit}")
            }
            Violation::IqCountMismatch { counted, tracked } => {
                write!(f, "IQ counter says {tracked} but ROB snapshot counts {counted}")
            }
            Violation::SequenceOrder { resource, seq } => {
                write!(f, "{resource} sequence numbers not strictly increasing at seq {seq}")
            }
            Violation::OrphanQueueEntry { resource, seq } => {
                write!(f, "{resource} entry seq {seq} has no matching ROB entry")
            }
            Violation::CommitRegression { prev, now } => {
                write!(f, "commit progress went backwards: {prev} -> {now}")
            }
            Violation::CommitOverlap { committed, rob_front } => {
                write!(f, "ROB head seq {rob_front} is not younger than committed seq {committed}")
            }
            Violation::MissedWakeup { seq } => {
                write!(f, "seq {seq} is issuable but absent from the scheduler ready set")
            }
            Violation::GhostReady { seq } => {
                write!(f, "ready set holds seq {seq} with no waiting ROB entry")
            }
            Violation::BudgetOverrun { name, bits, max_bits } => {
                write!(f, "{name} uses {bits} bits, over its {max_bits}-bit Table 2 budget")
            }
            Violation::UnknownStructure { name } => {
                write!(f, "no Table 2 storage budget on file for `{name}`")
            }
        }
    }
}
