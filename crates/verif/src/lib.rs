//! # tvp-verif — simulator verification layer
//!
//! Cycle-level invariant auditing and storage-budget accounting for the
//! TVP/SpSR pipeline model. A simulator is only as good as the
//! invariants it keeps: this crate makes the big ones machine-checked.
//!
//! * [`check`] — [`PipelineAuditor`]s over plain-data
//!   [`PipelineSnapshot`]s: physical-register conservation (free list ∪
//!   committed map ∪ in-flight destinations partitions the PRF),
//!   rename-map consistency across VP early writeback and SpSR
//!   substitution, ROB/IQ/LSQ occupancy bounds, and in-order commit
//!   monotonicity;
//! * [`budget`] — the [`StorageBudget`] trait every hardware table in
//!   the simulator implements, plus the paper's Table 2 ceilings they
//!   are asserted against in one place;
//! * [`violation`] — the shared, structured [`Violation`] taxonomy.
//!
//! The crate is dependency-free by design: `tvp-core` depends on it (to
//! run the auditors under its `verif` feature), never the other way
//! around, and tests can fabricate deliberately broken snapshots to
//! prove the auditors catch real corruption.
//!
//! # Examples
//!
//! ```
//! use tvp_verif::{budget, Violation};
//!
//! // A GVP-sized VTAGE posing as the TVP configuration blows the
//! // paper's 13.95 KB budget and is flagged.
//! let actual = vec![("vtage.tvp".to_owned(), 452_224u64)];
//! let violations = budget::check_budgets(&budget::table2_budgets(), &actual);
//! assert!(matches!(violations[0], Violation::BudgetOverrun { .. }));
//! ```

pub mod budget;
pub mod check;
pub mod snapshot;
pub mod violation;

pub use budget::{BudgetSpec, StorageBudget};
pub use check::{run_suite, standard_suite, AuditReport, PipelineAuditor};
pub use snapshot::{
    MapEntry, PipelineSnapshot, QueueLimits, RegClass, RegClassSnapshot, RobSnapshot, SnapName,
};
pub use violation::Violation;
