//! Storage-budget accounting against the paper's Table 2.
//!
//! Every stateful hardware structure in the simulator implements
//! [`StorageBudget`], reporting its exact size in bits. The pipeline
//! collects those reports and asserts them — in this one place —
//! against the paper's published budgets: the machine being simulated
//! must never silently grow past the hardware the paper costs out.

use crate::violation::Violation;

/// Self-reported storage footprint of one hardware structure.
///
/// `storage_bits` must count *state* bits — table entries, tags,
/// confidence/usefulness fields, valid bits and replacement metadata —
/// not host-side bookkeeping such as statistics counters.
pub trait StorageBudget {
    /// Budget-table name of this structure (e.g. `"vtage.tvp"`).
    fn storage_name(&self) -> &'static str;
    /// Exact modeled state in bits.
    fn storage_bits(&self) -> u64;
    /// Convenience: modeled state in kilobytes.
    fn storage_kb(&self) -> f64 {
        self.storage_bits() as f64 / 8.0 / 1024.0
    }
}

/// A named storage ceiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Structure name, matching [`StorageBudget::storage_name`].
    pub name: &'static str,
    /// Ceiling in bits.
    pub max_bits: u64,
}

/// KiB to bits.
const fn kib(n: u64) -> u64 {
    n * 1024 * 8
}

/// The paper's Table 2 storage budgets, bit-exact where the paper gives
/// exact numbers (the three VTAGE variants reproduce §3.3's
/// 7.95 / 13.95 / 55.2 KB) and a 15% SRAM-overhead ceiling for the
/// caches, whose tag/state organisation the paper leaves implicit.
#[must_use]
pub fn table2_budgets() -> Vec<BudgetSpec> {
    vec![
        // Front end. TAGE is "32KB" in Table 2; the ceiling allows the
        // usual metadata slack above the nominal capacity.
        BudgetSpec { name: "tage", max_bits: kib(34) },
        BudgetSpec { name: "btb", max_bits: 8192 * 51 },
        BudgetSpec { name: "ras", max_bits: 32 * 48 },
        BudgetSpec { name: "ibtc", max_bits: 1024 * 59 },
        // Value predictor, per prediction-width mode (§3.3).
        BudgetSpec { name: "vtage.mvp", max_bits: 65_152 },
        BudgetSpec { name: "vtage.tvp", max_bits: 114_304 },
        BudgetSpec { name: "vtage.gvp", max_bits: 452_224 },
        // Memory hierarchy: data capacity (Table 2) + 15% for tags,
        // state and replacement metadata.
        BudgetSpec { name: "l1d", max_bits: kib(128) * 115 / 100 },
        BudgetSpec { name: "l1i", max_bits: kib(128) * 115 / 100 },
        BudgetSpec { name: "l2", max_bits: kib(1024) * 115 / 100 },
        BudgetSpec { name: "l3", max_bits: kib(8192) * 115 / 100 },
        // Two-level TLBs (256-entry L1 + 3072-entry 12-way L2).
        BudgetSpec { name: "dtlb", max_bits: 112_000 },
        BudgetSpec { name: "itlb", max_bits: 112_000 },
        // Prefetchers.
        BudgetSpec { name: "stride", max_bits: 22_000 },
        BudgetSpec { name: "ampm", max_bits: 8_000 },
    ]
}

/// Checks `(name, bits)` reports against `specs`. Every reported
/// structure must have a budget on file and fit under it.
#[must_use]
pub fn check_budgets(specs: &[BudgetSpec], actual: &[(String, u64)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (name, bits) in actual {
        match specs.iter().find(|s| s.name == name) {
            None => out.push(Violation::UnknownStructure { name: name.clone() }),
            Some(spec) if *bits > spec.max_bits => out.push(Violation::BudgetOverrun {
                name: name.clone(),
                bits: *bits,
                max_bits: spec.max_bits,
            }),
            Some(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &'static str) -> BudgetSpec {
        *table2_budgets().iter().find(|s| s.name == name).expect("budget on file")
    }

    #[test]
    fn vtage_budgets_match_paper_headlines() {
        // §3.3: 7.95 KB (MVP), 13.95 KB (TVP), 55.2 KB (GVP).
        let kb = |name| spec(name).max_bits as f64 / 8.0 / 1024.0;
        assert!((kb("vtage.mvp") - 7.95).abs() < 0.01);
        assert!((kb("vtage.tvp") - 13.95).abs() < 0.01);
        assert!((kb("vtage.gvp") - 55.2).abs() < 0.05);
    }

    #[test]
    fn within_budget_is_clean() {
        let actual = vec![("vtage.tvp".to_owned(), spec("vtage.tvp").max_bits)];
        assert!(check_budgets(&table2_budgets(), &actual).is_empty());
    }

    #[test]
    fn over_budget_vtage_is_flagged() {
        // The deliberately broken fixture: a GVP-sized table posing as
        // the TVP configuration.
        let actual = vec![("vtage.tvp".to_owned(), 452_224)];
        let violations = check_budgets(&table2_budgets(), &actual);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::BudgetOverrun { name, bits: 452_224, max_bits: 114_304 } if name == "vtage.tvp"
        ));
    }

    #[test]
    fn unknown_structure_is_flagged() {
        let actual = vec![("mystery".to_owned(), 8)];
        let violations = check_budgets(&table2_budgets(), &actual);
        assert!(
            matches!(&violations[0], Violation::UnknownStructure { name } if name == "mystery")
        );
    }

    #[test]
    fn one_bit_over_is_flagged() {
        let actual = vec![("ras".to_owned(), spec("ras").max_bits + 1)];
        assert_eq!(check_budgets(&table2_budgets(), &actual).len(), 1);
    }
}
