//! Dependency-free snapshot of the pipeline's renaming state.
//!
//! The verification layer cannot depend on `tvp-core` (core depends on
//! *it*), so the auditors operate on a plain-data mirror of the state
//! they check. The pipeline assembles a [`PipelineSnapshot`] every N
//! cycles under the `verif` feature; tests can also build snapshots by
//! hand to exercise the checkers against deliberately broken states.

/// Physical register class.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RegClass {
    /// Integer / flags registers.
    Int,
    /// Floating-point / SIMD registers.
    Fp,
}

/// Mirror of the pipeline's widened physical register name: a real
/// physical register, an inlined 9-bit constant, or a known flags
/// pattern (the paper's §4 PhysName widening).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SnapName {
    /// A physical register index.
    Reg(u16),
    /// An inlined 9-bit signed constant (-256..=255).
    Inline(i16),
    /// A known NZCV flags pattern.
    KnownFlags(u8),
}

impl SnapName {
    /// The physical register index, if this name is a real register.
    #[must_use]
    pub fn reg(self) -> Option<u16> {
        match self {
            SnapName::Reg(p) => Some(p),
            SnapName::Inline(_) | SnapName::KnownFlags(_) => None,
        }
    }

    /// Structural validity: inline constants must fit the 9-bit signed
    /// window; register indices must be below `total` for their class.
    #[must_use]
    pub fn is_well_formed(self, total: u16) -> bool {
        match self {
            SnapName::Reg(p) => p < total,
            SnapName::Inline(v) => (-256..=255).contains(&v),
            SnapName::KnownFlags(_) => true,
        }
    }
}

/// One rename-map entry: a dense architectural register and the name it
/// currently maps to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MapEntry {
    /// Dense architectural register index.
    pub dense: u16,
    /// The register class of this architectural register.
    pub class: RegClass,
    /// The mapped name.
    pub name: SnapName,
}

/// Free-list and reference-count state of one physical register file.
#[derive(Clone, Debug)]
pub struct RegClassSnapshot {
    /// Register class.
    pub class: RegClass,
    /// Total physical registers (including hardwired ones).
    pub total: u16,
    /// Registers below this index are hardwired constants: never
    /// allocated, never freed, never reference-counted.
    pub hardwired: u16,
    /// Current free list, in queue order.
    pub free: Vec<u16>,
    /// Reference count per physical register (length == `total`).
    pub ref_counts: Vec<u32>,
}

/// In-flight state of one ROB entry that the auditors care about.
#[derive(Clone, Debug, Default)]
pub struct RobSnapshot {
    /// Program-order sequence number.
    pub seq: u64,
    /// The entry is still waiting in the issue queue.
    pub in_iq: bool,
    /// The entry has issued (execution started or finished).
    pub issued: bool,
    /// The full issue predicate holds right now: in the IQ, not yet
    /// issued, past its dispatch latency, and every operand ready. The
    /// pipeline computes this from ground truth (operand `ready_at`
    /// polls), independent of its event-driven wakeup machinery — the
    /// scheduler-consistency auditor cross-checks the two.
    pub issuable: bool,
    /// Destination mappings this µop will install into the committed
    /// map when it retires.
    pub new_names: Vec<MapEntry>,
}

/// Configured capacities of the pipeline's queues (Table 2).
#[derive(Copy, Clone, Debug)]
pub struct QueueLimits {
    /// Reorder buffer capacity.
    pub rob: usize,
    /// Issue queue capacity.
    pub iq: usize,
    /// Load queue capacity.
    pub lq: usize,
    /// Store queue capacity.
    pub sq: usize,
}

/// A plain-data mirror of everything the invariant auditors inspect.
#[derive(Clone, Debug)]
pub struct PipelineSnapshot {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Integer register file state.
    pub int: RegClassSnapshot,
    /// Floating-point register file state.
    pub fp: RegClassSnapshot,
    /// Committed rename map (one entry per dense architectural
    /// register).
    pub crat: Vec<MapEntry>,
    /// Speculative rename map (same order as `crat`).
    pub rat: Vec<MapEntry>,
    /// In-flight ROB entries, oldest first.
    pub rob: Vec<RobSnapshot>,
    /// The pipeline's cached issue-queue occupancy counter.
    pub iq_count: usize,
    /// Sequence numbers in the event-driven scheduler's ready set,
    /// oldest first. The set may conservatively hold stale candidates
    /// (select re-verifies), but must never miss an issuable µop.
    pub ready_seqs: Vec<u64>,
    /// Sequence numbers of in-flight loads, oldest first.
    pub lq_seqs: Vec<u64>,
    /// Sequence numbers of in-flight stores, oldest first.
    pub sq_seqs: Vec<u64>,
    /// Queue capacities.
    pub limits: QueueLimits,
    /// Sequence number of the most recently committed µop, if any.
    pub committed_seq: Option<u64>,
    /// Total µops retired so far.
    pub uops_retired: u64,
}

impl PipelineSnapshot {
    /// The register-file snapshot for `class`.
    #[must_use]
    pub fn class(&self, class: RegClass) -> &RegClassSnapshot {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }
}
