//! Structured event tracing: a fixed-capacity ring buffer behind a
//! runtime-gated tracer.
//!
//! The ring is allocated once (at enable time) and never grows;
//! recording overwrites the oldest event when full, so the buffer
//! always holds the *last* `capacity` pipeline events — exactly what a
//! post-mortem (chaos divergence, watchdog fire) wants. When tracing
//! is disabled, [`Tracer::record`] is a single branch on a `None`
//! discriminant: no allocation, no syscall, no buffer.

/// What happened. `#[repr(u8)]` keeps [`TraceEvent`] small enough that
/// the ring stays cache-resident at typical capacities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// µop renamed (left the front end).
    #[default]
    Rename,
    /// µop issued to a functional unit.
    Issue,
    /// µop retired.
    Commit,
    /// Pipeline flush applied; `arg` = µops squashed.
    Flush,
    /// Branch misprediction detected at fetch; `arg` = 1 while the
    /// verdict stalls fetch.
    BranchMispredict,
    /// Value misprediction detected at validation; `arg` = the
    /// mispredicted value.
    ValueMispredict,
    /// Deadlock watchdog fired; `arg` = stalled cycles.
    Watchdog,
}

impl EventKind {
    /// Stable lowercase name (Chrome trace `name` field, docs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Rename => "rename",
            EventKind::Issue => "issue",
            EventKind::Commit => "commit",
            EventKind::Flush => "flush",
            EventKind::BranchMispredict => "branch_mispredict",
            EventKind::ValueMispredict => "value_mispredict",
            EventKind::Watchdog => "watchdog",
        }
    }

    /// Every kind, in lane order (Chrome trace `tid` is the index).
    #[must_use]
    pub fn all() -> [EventKind; 7] {
        [
            EventKind::Rename,
            EventKind::Issue,
            EventKind::Commit,
            EventKind::Flush,
            EventKind::BranchMispredict,
            EventKind::ValueMispredict,
            EventKind::Watchdog,
        ]
    }

    /// The kind's lane index (Chrome trace `tid`).
    #[must_use]
    pub fn lane(self) -> u64 {
        self as u64
    }
}

/// One recorded pipeline event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Dynamic µop sequence number (0 for machine-level events).
    pub seq: u64,
    /// Program counter of the µop (0 for machine-level events).
    pub pc: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub arg: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Fixed-capacity overwrite-oldest ring of [`TraceEvent`]s.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    next: usize,
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding the last `capacity.max(1)` events. The single
    /// allocation of the tracing layer happens here, once.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: vec![TraceEvent::default(); capacity], // audited(no-alloc-in-hot-path): one-time ring allocation at enable time
            next: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Records an event, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.buf[self.next] = ev;
        self.next += 1;
        if self.next == self.buf.len() {
            self.next = 0;
        }
        if self.len < self.buf.len() {
            self.len += 1;
        } else {
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity chosen at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events, oldest first (diagnostic path; allocates).
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len); // audited(no-alloc-in-hot-path): diagnostic/export path, not per-cycle
        if self.len == self.buf.len() {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf[..self.len]);
        }
        out
    }
}

/// Runtime-gated event recorder. Disabled is the default and costs one
/// branch per [`Tracer::record`]; the same binary can run traced and
/// untraced simulations, which is what the determinism-neutrality test
/// exercises.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    ring: Option<EventRing>,
}

impl Tracer {
    /// A tracer that records nothing.
    #[must_use]
    pub const fn disabled() -> Self {
        Tracer { ring: None }
    }

    /// A tracer recording into a fresh ring of `capacity` events.
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        Tracer { ring: Some(EventRing::new(capacity)) }
    }

    /// Whether events are being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, kind: EventKind, cycle: u64, seq: u64, pc: u64, arg: u64) {
        if let Some(ring) = self.ring.as_mut() {
            ring.record(TraceEvent { cycle, seq, pc, arg, kind });
        }
    }

    /// The held events, oldest first (empty when disabled).
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring.as_ref().map(EventRing::snapshot).unwrap_or_default()
    }

    /// Events lost to ring overwrite (0 when disabled).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, EventRing::dropped)
    }

    /// The ring capacity (0 when disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.as_ref().map_or(0, EventRing::capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent { cycle, seq: cycle, pc: 0x1000 + cycle, arg: 0, kind: EventKind::Commit }
    }

    #[test]
    fn ring_holds_everything_under_capacity() {
        let mut r = EventRing::new(8);
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0].cycle, 0);
        assert_eq!(snap[4].cycle, 4);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut r = EventRing::new(4);
        for c in 0..10 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.dropped(), 6);
        let cycles: Vec<u64> = r.snapshot().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "last N survive, oldest first");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = EventRing::new(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.snapshot().len(), 1);
        assert_eq!(r.snapshot()[0].cycle, 2);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(EventKind::Rename, 1, 2, 3, 4);
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn enabled_tracer_snapshots_in_order() {
        let mut t = Tracer::enabled(16);
        t.record(EventKind::Rename, 1, 10, 0x40, 0);
        t.record(EventKind::Issue, 2, 10, 0x40, 0);
        t.record(EventKind::Commit, 3, 10, 0x40, 0);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].kind, EventKind::Rename);
        assert_eq!(snap[2].kind, EventKind::Commit);
    }

    #[test]
    fn kind_lanes_are_distinct_and_named() {
        let all = EventKind::all();
        for (i, k) in all.iter().enumerate() {
            assert_eq!(k.lane(), i as u64);
            assert!(!k.name().is_empty());
        }
    }
}
