//! CPI-stack accounting: where every cycle's retire slots went.
//!
//! The accountant is fed once per simulated cycle: `retired` slots are
//! credited to [`SlotClass::Base`] and the remaining
//! `commit_width − retired` slots are charged to exactly one loss
//! class, chosen deterministically from pipeline state by the core.
//! Because every slot of every cycle lands in exactly one bucket, the
//! components always sum to `cycles × commit_width` — the invariant
//! the `obs_neutrality` harness test locks on every workload.

use crate::registry::Registry;

/// Where one retire-width slot of one cycle went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotClass {
    /// A µop retired in this slot (useful work).
    Base,
    /// ROB empty and fetch starved for a front-end reason other than a
    /// resolving branch (i-cache miss, taken-branch bubble, BTB
    /// mistarget, trace exhausted).
    Frontend,
    /// ROB empty while fetch stalls on an unresolved mispredicted
    /// branch (this trace-driven model stalls instead of fetching the
    /// wrong path).
    BranchMispredict,
    /// ROB empty during the refill shadow of a value-misprediction
    /// flush (redirect penalty plus the front-end refill depth).
    VpMispredictFlush,
    /// ROB head is an unfinished load or store (data-cache / DRAM /
    /// store-queue latency), or the refill shadow of a memory-ordering
    /// flush.
    Memory,
    /// ROB head is an unfinished non-memory µop: execution latency,
    /// scheduler or functional-unit contention, dependency chains.
    BackendStructural,
}

/// The per-workload CPI stack (absolute slot counts, not ratios).
#[must_use = "a CPI stack that is dropped was a wasted attribution pass"]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Slots that retired a µop.
    pub base: u64,
    /// Slots lost to front-end starvation.
    pub frontend: u64,
    /// Slots lost to branch-misprediction fetch stalls.
    pub branch_mispredict: u64,
    /// Slots lost to value-misprediction flush recovery.
    pub vp_mispredict_flush: u64,
    /// Slots lost to memory latency.
    pub memory: u64,
    /// Slots lost to back-end structural/latency limits.
    pub backend_structural: u64,
}

impl CpiStack {
    /// Credits `n` retired slots to the base component.
    #[inline]
    pub fn retire(&mut self, n: u64) {
        self.base = self.base.saturating_add(n);
    }

    /// Charges `n` lost slots to `class`.
    ///
    /// `class` must be a loss class; charging [`SlotClass::Base`] here
    /// is accepted and equivalent to [`CpiStack::retire`] so the sum
    /// invariant can never be broken by a caller mix-up.
    #[inline]
    pub fn lose(&mut self, class: SlotClass, n: u64) {
        let slot = match class {
            SlotClass::Base => &mut self.base,
            SlotClass::Frontend => &mut self.frontend,
            SlotClass::BranchMispredict => &mut self.branch_mispredict,
            SlotClass::VpMispredictFlush => &mut self.vp_mispredict_flush,
            SlotClass::Memory => &mut self.memory,
            SlotClass::BackendStructural => &mut self.backend_structural,
        };
        *slot = slot.saturating_add(n);
    }

    /// Every component with its stable registry/report name.
    #[must_use]
    pub fn components(&self) -> [(&'static str, u64); 6] {
        [
            ("base", self.base),
            ("frontend", self.frontend),
            ("branch_mispredict", self.branch_mispredict),
            ("vp_mispredict_flush", self.vp_mispredict_flush),
            ("memory", self.memory),
            ("backend_structural", self.backend_structural),
        ]
    }

    /// Total attributed slots; equals `cycles × commit_width` when fed
    /// once per cycle.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.components().iter().fold(0u64, |acc, (_, v)| acc.saturating_add(*v))
    }

    /// One component as a fraction of all attributed slots (0 when
    /// nothing has been attributed yet).
    #[must_use]
    pub fn fraction(&self, component: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            component as f64 / total as f64
        }
    }

    /// Publishes every component (and the total) as `cpi.*` counters.
    pub fn fill_registry(&self, reg: &mut Registry) {
        for (name, value) in self.components() {
            reg.counter_scoped("cpi", name, value);
        }
        reg.counter_scoped("cpi", "total_slots", self.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_total() {
        let mut s = CpiStack::default();
        // 10 cycles of an 8-wide machine: every slot must land.
        for cycle in 0..10u64 {
            let retired = cycle % 4;
            s.retire(retired);
            s.lose(
                match cycle % 3 {
                    0 => SlotClass::Frontend,
                    1 => SlotClass::Memory,
                    _ => SlotClass::BackendStructural,
                },
                8 - retired,
            );
        }
        assert_eq!(s.total(), 80, "10 cycles x 8 slots all attributed");
        let by_hand: u64 = s.components().iter().map(|(_, v)| v).sum();
        assert_eq!(by_hand, s.total());
    }

    #[test]
    fn losing_base_is_equivalent_to_retiring() {
        let mut a = CpiStack::default();
        let mut b = CpiStack::default();
        a.retire(3);
        b.lose(SlotClass::Base, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn fractions_are_guarded_and_normalised() {
        let empty = CpiStack::default();
        assert_eq!(empty.fraction(empty.base), 0.0, "zero denominator");
        let mut s = CpiStack::default();
        s.retire(6);
        s.lose(SlotClass::Memory, 2);
        assert!((s.fraction(s.base) - 0.75).abs() < 1e-12);
        assert!((s.fraction(s.memory) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn registry_names_are_stable() {
        let mut s = CpiStack::default();
        s.retire(5);
        s.lose(SlotClass::VpMispredictFlush, 3);
        let mut reg = Registry::new();
        s.fill_registry(&mut reg);
        let names: Vec<&str> = reg.counters().iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"cpi.base"));
        assert!(names.contains(&"cpi.vp_mispredict_flush"));
        assert!(names.contains(&"cpi.total_slots"));
    }
}
