//! Observability layer for the TVP/SpSR simulator.
//!
//! A dependency-free leaf crate so every simulator crate can use it
//! without cycles. Four pieces:
//!
//! - [`counters`] — the saturating counter primitives ([`sat_inc`] /
//!   [`sat_add`]) every hot-path statistic routes through;
//! - [`cpi`] — the CPI-stack accountant: every retire-width slot of
//!   every cycle is attributed to exactly one [`cpi::SlotClass`], so
//!   the components always sum to `cycles × commit_width`;
//! - [`event`] — a fixed-capacity, allocation-free event-trace ring
//!   buffer behind a runtime-gated [`event::Tracer`] (one branch per
//!   record when disabled, zero allocation either way);
//! - [`registry`] / [`export`] — a schema-versioned counter registry
//!   with JSON and Prometheus text emitters, plus Chrome
//!   `trace_event` export of captured event rings.
//!
//! Everything here is *observation only*: recording an event or
//! attributing a slot never feeds back into simulated state, which is
//! what makes the layer determinism-neutral (locked by the
//! `obs_neutrality` integration test in the harness).

pub mod counters;
pub mod cpi;
pub mod event;
pub mod export;
pub mod registry;

pub use counters::{sat_add, sat_inc};
pub use cpi::{CpiStack, SlotClass};
pub use event::{EventKind, EventRing, TraceEvent, Tracer};
pub use registry::{Registry, METRICS_SCHEMA_VERSION};
