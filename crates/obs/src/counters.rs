//! Saturating counter primitives.
//!
//! Counters on fault-campaign paths are hardened: [`sat_inc`] /
//! [`sat_add`] saturate at `u64::MAX` instead of wrapping and bump an
//! `overflow_events` sink, so an arbitrarily long chaos run can
//! degrade a counter's precision but never silently corrupt reported
//! IPC. Originally in `tvp_core::stats` (which still re-exports them);
//! they live here so mem/predictor statistics can use the same
//! discipline without depending on the core.

/// Saturating counter increment. On overflow the counter pins at
/// `u64::MAX` and `overflow_events` records the loss.
#[inline]
pub fn sat_inc(counter: &mut u64, overflow_events: &mut u64) {
    sat_add(counter, 1, overflow_events);
}

/// Saturating counter addition (see [`sat_inc`]).
#[inline]
pub fn sat_add(counter: &mut u64, n: u64, overflow_events: &mut u64) {
    let (v, overflowed) = counter.overflowing_add(n);
    if overflowed {
        *counter = u64::MAX;
        *overflow_events = overflow_events.saturating_add(1);
    } else {
        *counter = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_counters_never_wrap() {
        let mut counter = u64::MAX - 1;
        let mut overflows = 0;
        sat_inc(&mut counter, &mut overflows);
        assert_eq!(counter, u64::MAX);
        assert_eq!(overflows, 0);
        sat_inc(&mut counter, &mut overflows);
        assert_eq!(counter, u64::MAX, "pins instead of wrapping");
        assert_eq!(overflows, 1);
        sat_add(&mut counter, 1_000, &mut overflows);
        assert_eq!(counter, u64::MAX);
        assert_eq!(overflows, 2);
        let mut fresh = 10;
        sat_add(&mut fresh, 5, &mut overflows);
        assert_eq!(fresh, 15);
        assert_eq!(overflows, 2, "no spurious overflow events");
    }

    #[test]
    fn overflow_sink_itself_saturates() {
        let mut counter = u64::MAX;
        let mut overflows = u64::MAX;
        sat_inc(&mut counter, &mut overflows);
        assert_eq!(overflows, u64::MAX);
    }
}
