//! Chrome `trace_event` export of a captured event ring.
//!
//! Produces the JSON Object Format understood by `chrome://tracing`
//! and Perfetto: a top-level object with a `traceEvents` array plus
//! our own `schema`, `otherData` and `metrics` members (the format
//! explicitly allows extra top-level keys). Each pipeline event
//! becomes an instant event (`"ph":"i"`) on a per-[`EventKind`] lane
//! (`tid`), with the simulated cycle as the timestamp, and lanes are
//! labelled with `thread_name` metadata records.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};
use crate::registry::{json_string, Registry};

/// Version of the trace document envelope (the non-`traceEvents`
/// members). The embedded metrics object carries its own
/// [`crate::registry::METRICS_SCHEMA_VERSION`].
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Renders `events` (oldest first) and `metrics` as one Chrome trace
/// JSON document. `dropped` reports ring overwrites so a consumer
/// knows the window is a suffix of the run.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent], dropped: u64, metrics: &Registry) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    let _ = write!(
        out,
        "{{\"schema\":{TRACE_SCHEMA_VERSION},\"displayTimeUnit\":\"ns\",\"traceEvents\":["
    );
    let mut first = true;
    for kind in EventKind::all() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":{}}}}}",
            kind.lane(),
            json_string(kind.name()),
        );
    }
    for ev in events {
        out.push(',');
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"pipeline\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\
             \"tid\":{},\"args\":{{\"seq\":{},\"pc\":\"0x{:x}\",\"arg\":{}}}}}",
            json_string(ev.kind.name()),
            ev.cycle,
            ev.kind.lane(),
            ev.seq,
            ev.pc,
            ev.arg,
        );
    }
    let _ = write!(
        out,
        "],\"otherData\":{{\"event_count\":{},\"dropped_events\":{dropped}}},\"metrics\":{}}}",
        events.len(),
        metrics.to_json(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent { cycle: 5, seq: 1, pc: 0x400, arg: 0, kind: EventKind::Rename },
            TraceEvent { cycle: 9, seq: 1, pc: 0x400, arg: 0, kind: EventKind::Commit },
            TraceEvent { cycle: 12, seq: 2, pc: 0x404, arg: 3, kind: EventKind::Flush },
        ]
    }

    #[test]
    fn document_has_envelope_events_and_metrics() {
        let mut reg = Registry::new();
        reg.counter("core.cycles", 13);
        let doc = chrome_trace(&sample(), 7, &reg);
        assert!(doc.starts_with(&format!("{{\"schema\":{TRACE_SCHEMA_VERSION},")));
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"commit\""));
        assert!(doc.contains("\"ts\":12"));
        assert!(doc.contains("\"pc\":\"0x404\""));
        assert!(doc.contains("\"dropped_events\":7"));
        assert!(doc.contains("\"event_count\":3"));
        assert!(doc.contains("\"metrics\":{\"schema\":"));
        assert!(doc.contains("\"core.cycles\":13"));
        assert!(doc.ends_with("}"));
    }

    #[test]
    fn every_lane_is_labelled_even_with_no_events() {
        let doc = chrome_trace(&[], 0, &Registry::new());
        for kind in EventKind::all() {
            assert!(
                doc.contains(&format!("\"args\":{{\"name\":\"{}\"}}", kind.name())),
                "lane {} labelled",
                kind.name()
            );
        }
    }

    #[test]
    fn braces_and_brackets_balance() {
        let doc = chrome_trace(&sample(), 0, &Registry::new());
        let depth = |open: char, close: char| {
            doc.chars().fold(0i64, |d, c| {
                if c == open {
                    d + 1
                } else if c == close {
                    d - 1
                } else {
                    d
                }
            })
        };
        assert_eq!(depth('{', '}'), 0);
        assert_eq!(depth('[', ']'), 0);
    }
}
