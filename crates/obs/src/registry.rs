//! Counter registry and exporters.
//!
//! A [`Registry`] is a flat, ordered list of named counters (`u64`)
//! and gauges (`f64`) assembled after a run by walking the simulator's
//! statistics structs. It serialises to a single schema-versioned JSON
//! document and to Prometheus text exposition format; the bench
//! engine's per-job telemetry and the `simulate --trace` export both
//! consume the JSON form.
//!
//! Names are dotted paths (`core.cycles`, `mem.l1d.misses`,
//! `cpi.base`); the Prometheus emitter maps them to
//! `tvp_core_cycles`-style metric names.

use std::fmt::Write as _;

/// Version of the exported metrics document. Bump when a counter is
/// renamed or removed, or the document shape changes; adding new
/// counters is backward compatible and needs no bump.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// An ordered collection of named counters and gauges.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds a monotone counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_owned(), value));
    }

    /// Adds a counter under a dotted scope (`scope.name`).
    pub fn counter_scoped(&mut self, scope: &str, name: &str, value: u64) {
        self.counters.push((format!("{scope}.{name}"), value));
    }

    /// Adds a point-in-time gauge (ratios, derived metrics).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.push((name.to_owned(), value));
    }

    /// The counters, in insertion order.
    #[must_use]
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// The gauges, in insertion order.
    #[must_use]
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// The registry as one schema-versioned JSON object:
    /// `{"schema": N, "counters": {...}, "gauges": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":{METRICS_SCHEMA_VERSION},\"counters\":{{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{value}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), json_number(*value));
        }
        out.push_str("}}");
        out
    }

    /// The registry in Prometheus text exposition format (`tvp_`
    /// prefix, dots mapped to underscores).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {value}");
        }
        for (name, value) in &self.gauges {
            let metric = prom_name(name);
            let _ = writeln!(out, "# TYPE {metric} gauge");
            if value.is_finite() {
                let _ = writeln!(out, "{metric} {value}");
            } else {
                let _ = writeln!(out, "{metric} NaN");
            }
        }
        out
    }
}

/// A JSON string literal (quotes included) with the escapes our
/// code-controlled names and workload labels can need.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number; non-finite floats have no JSON representation and
/// are emitted as `null`.
#[must_use]
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn prom_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 4);
    out.push_str("tvp_");
    for c in dotted.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_schema_versioned_and_ordered() {
        let mut r = Registry::new();
        r.counter("core.cycles", 1000);
        r.counter_scoped("mem.l1d", "misses", 42);
        r.gauge("core.ipc", 2.5);
        let json = r.to_json();
        assert!(json.starts_with(&format!("{{\"schema\":{METRICS_SCHEMA_VERSION},")));
        assert!(json.contains("\"core.cycles\":1000"));
        assert!(json.contains("\"mem.l1d.misses\":42"));
        assert!(json.contains("\"core.ipc\":2.5"));
        let cycles = json.find("core.cycles").expect("present");
        let misses = json.find("mem.l1d.misses").expect("present");
        assert!(cycles < misses, "insertion order preserved");
    }

    #[test]
    fn non_finite_gauges_serialise_as_null() {
        let mut r = Registry::new();
        r.gauge("bad", f64::INFINITY);
        r.gauge("nan", f64::NAN);
        let json = r.to_json();
        assert!(json.contains("\"bad\":null"));
        assert!(json.contains("\"nan\":null"));
    }

    #[test]
    fn prometheus_text_has_type_lines_and_sanitised_names() {
        let mut r = Registry::new();
        r.counter("mem.l1d.misses", 7);
        r.gauge("core.ipc", 1.25);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE tvp_mem_l1d_misses counter\ntvp_mem_l1d_misses 7\n"));
        assert!(text.contains("# TYPE tvp_core_ipc gauge\ntvp_core_ipc 1.25\n"));
    }

    #[test]
    fn json_strings_escape_control_and_quote_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
