//! The paper's xalancbmk outlier, reproduced: a loop that retrieves a
//! base address through three dependent loads of *stable* pointers.
//! The pointers need more than 9 bits, so only Generic VP can predict
//! them — MVP and TVP sit on their hands while GVP collapses the chain
//! (paper §6.1: +52.65% on 623.xalancbmk).
//!
//! ```text
//! cargo run --release -p tvp-harness --example pointer_chase
//! ```

use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate_vp;

fn main() {
    let workload = tvp_workloads::suite::by_name("pointer_chase").expect("kernel exists");
    let trace = workload.trace(200_000);
    println!(
        "workload: {} (proxy for {}), {} µops\n",
        workload.name,
        workload.proxy,
        trace.uops.len()
    );

    let base = simulate_vp(VpMode::Off, false, &trace);
    println!(
        "{:<10} {:>10} {:>7} {:>10} {:>10} {:>9}",
        "config", "cycles", "IPC", "speedup", "coverage", "flushes"
    );
    println!(
        "{:<10} {:>10} {:>7.3} {:>10} {:>10} {:>9}",
        "baseline",
        base.cycles,
        base.ipc(),
        "-",
        "-",
        "-"
    );
    for (vp, name) in [(VpMode::Mvp, "MVP"), (VpMode::Tvp, "TVP"), (VpMode::Gvp, "GVP")] {
        let s = simulate_vp(vp, false, &trace);
        println!(
            "{:<10} {:>10} {:>7.3} {:>9.2}% {:>9.1}% {:>9}",
            name,
            s.cycles,
            s.ipc(),
            (s.speedup_over(&base) - 1.0) * 100.0,
            s.vp.coverage() * 100.0,
            s.flush.vp_flushes
        );
    }

    println!();
    println!("Why: each lookup walks cell_a → cell_b → cell_c → element. The");
    println!("three pointer loads always return the same 64-bit addresses, so");
    println!("VTAGE becomes confident — but only GVP can *name* such wide");
    println!("values. With the chain predicted, the hit/miss branch on the");
    println!("element resolves an entire L1-load-chain earlier, which is where");
    println!("the cycles go (the branch mispredicts ~50% of the time).");
}
