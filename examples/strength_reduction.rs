//! Speculative Strength Reduction up close: a hand-written loop whose
//! instructions collapse at rename once a value prediction lands.
//!
//! The loop loads a flag that is almost always `0x0`. Under MVP the
//! load's destination is renamed to the hardwired zero register; every
//! Table 1 idiom downstream then disappears at rename: `add` becomes a
//! move, `ands` becomes a nop that *also* resolves the following
//! `csel` and `b.eq` through the frontend NZCV register.
//!
//! ```text
//! cargo run --release -p tvp-harness --example strength_reduction
//! ```

use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::simulate;
use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::AddrMode;
use tvp_isa::reg::x;
use tvp_workloads::program::Asm;
use tvp_workloads::Machine;

fn main() {
    // A flag array that is ~always zero (one flag in 4096 set).
    let mut a = Asm::new();
    a.i(movz(x(9), 2_000_000));
    a.label("loop");
    a.i(add(x(0), x(0), 1i64));
    a.i(and(x(1), x(0), 0x3FFFi64));
    a.i(ldr_sized(x(2), AddrMode::BaseIndex { base: x(20), index: x(1), shift: 0 }, 1, false));
    a.i(add(x(3), x(4), x(2))); // SpSR: move when x2 == 0
    a.i(ands(x(5), x(6), x(2))); // SpSR: nop + NZCV when x2 == 0
    a.i(csel(x(7), x(3), x(0), Cond::Eq)); // SpSR: move once NZCV known
    a.i(add(x(8), x(8), x(7)));
    a.i(subs(x(9), x(9), 1i64));
    a.b_cond(Cond::Ne, "loop");

    let mut machine = Machine::new(a.assemble().expect("program assembles"));
    machine.set_reg(x(20), 0x10_0000);
    machine.set_reg(x(6), 0xABCD);
    machine.write_mem(0x10_0000 + 1234, 1, 1); // the lone set flag
    let trace = machine.run(150_000);

    println!("trace: {} µops\n", trace.uops.len());
    for (vp, spsr, label) in [
        (VpMode::Off, false, "baseline (DSR only)"),
        (VpMode::Mvp, false, "MVP"),
        (VpMode::Mvp, true, "MVP + SpSR"),
    ] {
        let mut cfg = CoreConfig::with_vp(vp);
        cfg.spsr = spsr;
        let s = simulate(cfg, &trace);
        let r = s.rename;
        println!("{label}:");
        println!("  cycles {:>9}   IPC {:.3}", s.cycles, s.ipc());
        println!(
            "  eliminated at rename: zero {} | one {} | move {} | SpSR {}",
            r.zero_idiom, r.one_idiom, r.move_elim, r.spsr
        );
        println!(
            "  IQ dispatched {} / issued {}   PRF reads {} writes {}\n",
            s.activity.iq_dispatched,
            s.activity.iq_issued,
            s.activity.int_prf_reads,
            s.activity.int_prf_writes
        );
    }
    println!("With MVP+SpSR, the add/ands/csel triple vanishes at rename in");
    println!("nearly every iteration — ~3 of 9 instructions need no scheduler");
    println!("entry, no issue slot and no PRF traffic (paper §4.1).");
}
