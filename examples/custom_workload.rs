//! Authoring a custom workload with the assembler DSL, inspecting its
//! value distribution (Fig. 1 style) and sweeping every VP flavour.
//!
//! ```text
//! cargo run --release -p tvp-harness --example custom_workload
//! ```

use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate_vp;
use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::AddrMode;
use tvp_isa::reg::x;
use tvp_workloads::program::Asm;
use tvp_workloads::value_dist::ValueDistribution;
use tvp_workloads::Machine;

fn main() {
    // A tiny checksum kernel: walk a buffer, rotate-and-add, count the
    // zero bytes (predicates galore).
    let mut a = Asm::new();
    a.label("outer");
    a.i(movz(x(0), 0)); // cursor (zero idiom at rename!)
    a.i(movz(x(2), 8192)); // bytes
    a.label("byte");
    a.i(ldr_sized(x(3), AddrMode::BaseIndex { base: x(20), index: x(0), shift: 0 }, 1, false));
    a.i(add(x(4), x(4), x(3))); // checksum
    a.i(lsl(x(5), x(4), 7i64));
    a.i(lsr(x(6), x(4), 57i64));
    a.i(orr(x(4), x(5), x(6))); // rotate
    a.i(cmp(x(3), 0i64));
    a.i(cset(x(7), Cond::Eq)); // is-zero predicate (0/1)
    a.i(add(x(8), x(8), x(7))); // zero-byte count
    a.i(add(x(0), x(0), 1i64));
    a.i(subs(x(2), x(2), 1i64));
    a.b_cond(Cond::Ne, "byte");
    a.i(add(x(19), x(19), 1i64));
    a.b("outer");

    let mut machine = Machine::new(a.assemble().expect("program assembles"));
    machine.set_reg(x(20), 0x20_0000);
    // Buffer: almost entirely zero bytes (a sparse bitmap) — stable
    // enough for FPC confidence to saturate on the load.
    for i in (0..8192u64).step_by(1024) {
        machine.write_mem(0x20_0000 + i + 7, 1, (i % 13) + 1);
    }
    let trace = machine.run(120_000);

    // Fig. 1-style analysis of our own kernel.
    let mut dist = ValueDistribution::new();
    dist.add_trace(&trace);
    println!("value distribution of the custom kernel (top 5):");
    for (value, share) in dist.top(5) {
        println!("  {value:#6x}  {:5.1}%", share * 100.0);
    }
    println!(
        "  0/1 share {:.1}%   9-bit share {:.1}%\n",
        dist.zero_one_share() * 100.0,
        dist.narrow9_share() * 100.0
    );

    let base = simulate_vp(VpMode::Off, false, &trace);
    println!("baseline IPC {:.3}", base.ipc());
    for vp in [VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
        let s = simulate_vp(vp, true, &trace);
        println!(
            "{vp:?} + SpSR: IPC {:.3} ({:+.2}%), coverage {:.1}%, SpSR'd {}",
            s.ipc(),
            (s.speedup_over(&base) - 1.0) * 100.0,
            s.vp.coverage() * 100.0,
            s.rename.spsr
        );
    }
}
