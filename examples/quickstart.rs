//! Quickstart: simulate one workload under the baseline and under
//! Targeted Value Prediction + SpSR, and compare.
//!
//! ```text
//! cargo run --release -p tvp-harness --example quickstart
//! ```

use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate_vp;

fn main() {
    // 1. Pick a workload from the built-in suite (a stand-in for
    //    641.leela_s; see DESIGN.md §3) and generate its dynamic trace.
    let workload = tvp_workloads::suite::by_name("mc_playout").expect("kernel exists");
    let trace = workload.trace(100_000);
    println!(
        "workload: {} (proxy for {}), {} arch insts → {} µops",
        workload.name,
        workload.proxy,
        trace.arch_insts,
        trace.uops.len()
    );

    // 2. Replay the trace through the paper's Table 2 machine.
    let baseline = simulate_vp(VpMode::Off, false, &trace);
    println!("\nbaseline          : {} cycles, IPC {:.3}", baseline.cycles, baseline.ipc());

    // 3. Same machine with Targeted VP and Speculative Strength
    //    Reduction enabled.
    let tvp = simulate_vp(VpMode::Tvp, true, &trace);
    println!("TVP + SpSR        : {} cycles, IPC {:.3}", tvp.cycles, tvp.ipc());
    println!("speedup           : {:+.2}%", (tvp.speedup_over(&baseline) - 1.0) * 100.0);
    println!(
        "VP coverage       : {:.1}% of eligible µops (accuracy {:.3}%)",
        tvp.vp.coverage() * 100.0,
        tvp.vp.accuracy() * 100.0
    );
    println!(
        "SpSR eliminations : {} µops ({:.2}% of instructions)",
        tvp.rename.spsr,
        tvp.rename.fraction(tvp.rename.spsr) * 100.0
    );
    println!(
        "IQ dispatches     : {} → {} ({:+.2}%)",
        baseline.activity.iq_dispatched,
        tvp.activity.iq_dispatched,
        (tvp.activity.iq_dispatched as f64 / baseline.activity.iq_dispatched as f64 - 1.0) * 100.0
    );
}
