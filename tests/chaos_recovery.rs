//! Chaos-engine integration tests: random programs under random fault
//! campaigns must converge to the golden functional state, sabotaged
//! recovery must be caught by the commit oracle, and the watchdog must
//! diagnose stalls instead of hanging.

use proptest::prelude::*;
use tvp_chaos::{ChaosConfig, DivergenceKind, FaultKind};
use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::Core;
use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::{AddrMode, Inst};
use tvp_isa::reg::x;
use tvp_workloads::machine::ArchSnapshot;
use tvp_workloads::program::Asm;
use tvp_workloads::{Machine, Trace};

/// One random loop-body instruction over scratch registers x0–x7,
/// data pointer x20 (mirrors `workload_properties`).
fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = 0u8..8;
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| add(x(d), x(a), x(b))),
        (reg.clone(), reg.clone(), -64i64..64).prop_map(|(d, a, i)| sub(x(d), x(a), i)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| eor(x(d), x(a), x(b))),
        (reg.clone(), -256i64..256).prop_map(|(d, i)| movz(x(d), i)),
        (reg.clone(), reg.clone()).prop_map(|(d, a)| mov(x(d), x(a))),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| mul(x(d), x(a), x(b))),
        (reg.clone(), 0i64..256)
            .prop_map(|(d, o)| { ldr(x(d), AddrMode::BaseDisp { base: x(20), disp: o * 8 }) }),
        (reg, 0i64..256)
            .prop_map(|(s, o)| { str(x(s), AddrMode::BaseDisp { base: x(20), disp: o * 8 }) }),
    ]
}

/// A random fault campaign: each site gets an independent rate, with
/// forced VP mispredictions always enabled so recovery is exercised.
fn arb_campaign() -> impl Strategy<Value = ChaosConfig> {
    (1u64..u64::MAX, 10u32..200, 0u32..50, 0u32..50, 0u32..50, 0u32..50, 0u32..100, 0u32..100)
        .prop_map(|(seed, vp, vtage, tage, btb, ss, inv, delay)| {
            let mut c = ChaosConfig::quiet(seed);
            c.vp_force_mispredict_permille = vp;
            c.vtage_corrupt_permille = vtage;
            c.tage_corrupt_permille = tage;
            c.btb_corrupt_permille = btb;
            c.storeset_corrupt_permille = ss;
            c.branch_invert_permille = inv;
            c.cache_delay_permille = delay;
            c.cache_delay_max_cycles = 40;
            c.prefetch_drop_permille = inv;
            c
        })
}

/// Assembles a random loop, runs it functionally, and returns the
/// initial snapshot, the trace and the golden final snapshot.
fn golden_program(insts: &[Inst], loops: i64) -> (ArchSnapshot, Trace, ArchSnapshot) {
    let mut a = Asm::new();
    a.i(movz(x(9), loops));
    a.label("top");
    for i in insts {
        a.i(*i);
    }
    a.i(subs(x(9), x(9), 1i64));
    a.b_cond(Cond::Ne, "top");
    let mut m = Machine::new(a.assemble().expect("random program assembles"));
    m.set_reg(x(20), 0x40_0000);
    for i in 0..512u64 {
        m.write_mem(0x40_0000 + i * 8, 8, i.wrapping_mul(0x9E37));
    }
    let init = m.arch_snapshot();
    let trace = m.run(16_000);
    let golden = m.arch_snapshot();
    (init, trace, golden)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: random program × random campaign still
    /// commits exactly the golden architectural state.
    #[test]
    fn random_campaigns_converge_to_golden_state(
        insts in proptest::collection::vec(arb_inst(), 2..20),
        loops in 8i64..64,
        campaign in arb_campaign(),
    ) {
        let (init, trace, golden) = golden_program(&insts, loops);
        for vp in [VpMode::Tvp, VpMode::Gvp] {
            let cfg = CoreConfig::with_vp(vp).with_spsr().with_chaos(campaign);
            let mut core = Core::new(cfg);
            core.enable_oracle(&init);
            let s = core.run(&trace);
            prop_assert!(core.watchdog_diagnostic().is_none());
            prop_assert_eq!(s.insts_retired, trace.arch_insts);
            prop_assert_eq!(
                core.oracle_final_check(&golden), None,
                "diverged under {:?}, campaign {:?}", vp, campaign
            );
        }
    }

    /// Broken fixture: with the cursor-rollback sabotage armed, any
    /// run that actually flushes a value misprediction must be caught
    /// by the oracle as an order gap carrying the replaying seed.
    #[test]
    fn sabotaged_recovery_never_escapes_the_oracle(
        insts in proptest::collection::vec(arb_inst(), 2..20),
        seed in 1u64..u64::MAX,
    ) {
        let (init, trace, golden) = golden_program(&insts, 48);
        let mut campaign = ChaosConfig::sabotaged_campaign(seed);
        campaign.vp_force_mispredict_permille = 500;
        let cfg = CoreConfig::with_vp(VpMode::Gvp).with_chaos(campaign);
        let mut core = Core::new(cfg);
        core.enable_oracle(&init);
        let s = core.run(&trace);
        if s.flush.vp_flushes > 0 {
            // At least one squash skipped its rollback → must diverge.
            let d = core.oracle_final_check(&golden);
            prop_assert!(d.is_some(), "sabotage escaped: {} flushes", s.flush.vp_flushes);
            let d = d.expect("checked above");
            prop_assert!(matches!(d.kind, DivergenceKind::Order { .. }), "{}", d);
            prop_assert_eq!(d.chaos_seed, Some(seed));
        }
    }
}

#[test]
fn divergence_replays_exactly_from_its_seed() {
    // The seed embedded in a divergence report reproduces the same
    // first divergence on a fresh core — the replay contract.
    let w = tvp_workloads::suite::by_name("pointer_chase").expect("bundled workload");
    let run = |seed: u64| {
        let mut m = w.machine();
        let init = m.arch_snapshot();
        let trace = m.run(12_000);
        let cfg =
            CoreConfig::with_vp(VpMode::Gvp).with_chaos(ChaosConfig::sabotaged_campaign(seed));
        let mut core = Core::new(cfg);
        core.enable_oracle(&init);
        let _ = core.run(&trace);
        core.oracle_divergence().cloned()
    };
    let first = run(0xFEED_FACE).expect("sabotage diverges on pointer_chase");
    let replay = run(first.chaos_seed.expect("divergence carries its seed"));
    assert_eq!(Some(first), replay, "same seed must reproduce the same divergence");
}

#[test]
fn watchdog_diagnoses_instead_of_hanging() {
    let w = tvp_workloads::suite::by_name("stream_triad").expect("bundled workload");
    let trace = w.trace(2_000);
    let mut cfg = CoreConfig::table2();
    cfg.watchdog_cycles = 25; // shorter than the cold-start DRAM fill
    let mut core = Core::new(cfg);
    let _ = core.run(&trace);
    let diag = core.watchdog_diagnostic().expect("cold start stalls longer than 25 cycles");
    assert!(diag.stalled_cycles >= 25);
    assert!(diag.to_string().contains("no commit progress"), "{diag}");
}

#[test]
fn per_site_counters_attribute_each_fault_kind() {
    // Enabling exactly one site must light up exactly that counter
    // among the table-corruption sites.
    let w = tvp_workloads::suite::by_name("mc_playout").expect("bundled workload");
    let trace = w.trace(6_000);
    for kind in [FaultKind::TageCorrupt, FaultKind::BtbCorrupt, FaultKind::StoreSetCorrupt] {
        let mut c = ChaosConfig::quiet(11);
        match kind {
            FaultKind::TageCorrupt => c.tage_corrupt_permille = 100,
            FaultKind::BtbCorrupt => c.btb_corrupt_permille = 100,
            FaultKind::StoreSetCorrupt => c.storeset_corrupt_permille = 100,
            _ => {}
        }
        let s = tvp_core::pipeline::simulate(CoreConfig::table2().with_chaos(c), &trace);
        assert_eq!(s.insts_retired, trace.arch_insts, "{kind:?}");
        let hit = match kind {
            FaultKind::TageCorrupt => s.chaos.tage_corruptions,
            FaultKind::BtbCorrupt => s.chaos.btb_corruptions,
            FaultKind::StoreSetCorrupt => s.chaos.storeset_corruptions,
            _ => 0,
        };
        assert!(hit > 0, "{kind:?} counter never fired");
        assert_eq!(s.chaos.total(), hit, "{kind:?}: only its own counter may fire");
    }
}
