//! Checkpoint/resume chaos tests for sampled campaigns.
//!
//! A sampled campaign must survive being killed between intervals: the
//! durable store holds an architectural checkpoint after every
//! interval, and a restarted run must produce the **byte-identical**
//! result fingerprint a never-killed run produces. These tests prove
//! that bar three ways:
//!
//! 1. stop mid-campaign (`stop_after_intervals`, the in-process kill
//!    analogue), resume from the store, compare fingerprints against a
//!    cold storeless reference;
//! 2. corrupt the on-disk checkpoint (single byte flip), watch the
//!    store quarantine it and the run fall back to a cold start with —
//!    again — the identical fingerprint;
//! 3. run a whole suite campaign at two `--jobs` widths and compare
//!    campaign fingerprints.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tvp_bench::sampling::{
    campaign_fingerprint, run_sampled, run_suite_sampled, SampleKey, SampleRunOptions, SampleSpec,
};
use tvp_bench::store::{ResultStore, StoreConfig, CHECKPOINTS_DIR};
use tvp_core::config::CoreConfig;
use tvp_workloads::suite::by_name;
use tvp_workloads::Workload;

/// Stream length / spec sized for 5 intervals — enough that a kill at
/// interval 2 leaves real work on both sides of the cut.
const INSTS: u64 = 50_000;

fn spec() -> SampleSpec {
    SampleSpec::new(10_000, 3_000, 2_000).expect("chaos spec is valid")
}

fn workload() -> Workload {
    by_name("pointer_chase").expect("pointer_chase is in the suite")
}

/// Per-test scratch directory (same pattern as `store_recovery.rs`):
/// under the system temp dir, keyed by pid + test name, recreated
/// fresh so a previous failed run cannot leak state in.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tvp_ckpt_resume_{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

fn open_store(dir: &Path) -> Mutex<ResultStore> {
    Mutex::new(ResultStore::open(StoreConfig::at(dir.to_path_buf())).expect("store opens"))
}

#[test]
fn killed_campaign_resumes_byte_identical() {
    let dir = scratch("kill_resume");
    let cfg = CoreConfig::default();
    let w = workload();

    // Cold storeless reference: the fingerprint a never-killed,
    // never-checkpointed run produces.
    let reference = run_sampled(&w, &cfg, INSTS, spec(), SampleRunOptions::default());
    assert!(reference.intervals.len() >= 4, "spec must yield several intervals");
    let want = reference.fingerprint();

    // "Kill" after 2 freshly simulated intervals, checkpointing as we
    // go — the partial run returns with the store holding the newest
    // checkpoint.
    let store = open_store(&dir);
    let partial = run_sampled(
        &w,
        &cfg,
        INSTS,
        spec(),
        SampleRunOptions { store: Some(&store), stop_after_intervals: Some(2) },
    );
    assert_eq!(partial.intervals.len(), 2, "stopped after exactly two intervals");
    assert!(partial.total_insts < INSTS, "the kill left work behind");

    // Resume: the restarted run must pick up the checkpoint (warm hit,
    // resumed intervals) and finish byte-identical to the reference.
    let resumed = run_sampled(
        &w,
        &cfg,
        INSTS,
        spec(),
        SampleRunOptions { store: Some(&store), stop_after_intervals: None },
    );
    assert_eq!(resumed.resumed_intervals, 2, "resume replays nothing before the cut");
    assert_eq!(
        resumed.intervals.len(),
        reference.intervals.len(),
        "resume completes the remaining intervals"
    );
    assert_eq!(resumed.fingerprint(), want, "kill + resume is byte-identical to cold");
    assert_eq!(resumed.total_insts, reference.total_insts);
    assert_eq!(resumed.measured_insts, reference.measured_insts);
    {
        let s = store.lock().expect("store lock poisoned");
        assert_eq!(s.counters().warm_hits, 1, "resume took the checkpoint path");
        assert_eq!(s.counters().quarantined, 0);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_quarantines_and_falls_back_cold() {
    let dir = scratch("corrupt_ckpt");
    let cfg = CoreConfig::default();
    let w = workload();

    let reference = run_sampled(&w, &cfg, INSTS, spec(), SampleRunOptions::default());
    let want = reference.fingerprint();

    // Publish checkpoints up to interval 2, then flip one byte in the
    // middle of the on-disk checkpoint.
    let store = open_store(&dir);
    let _ = run_sampled(
        &w,
        &cfg,
        INSTS,
        spec(),
        SampleRunOptions { store: Some(&store), stop_after_intervals: Some(2) },
    );
    let digest = SampleKey::new(w.name, INSTS, &cfg, spec()).digest();
    let ckpt_path = dir.join(CHECKPOINTS_DIR).join(format!("{digest:016x}.ckpt"));
    let mut bytes = std::fs::read(&ckpt_path).expect("checkpoint file exists after publish");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&ckpt_path, &bytes).expect("corrupted checkpoint writes");

    // The restarted run must detect the corruption, quarantine the
    // checkpoint, start cold — and still land on the reference
    // fingerprint (checkpoints are a cache, never a source of truth).
    let resumed = run_sampled(
        &w,
        &cfg,
        INSTS,
        spec(),
        SampleRunOptions { store: Some(&store), stop_after_intervals: None },
    );
    assert_eq!(resumed.resumed_intervals, 0, "corrupt checkpoint must not be resumed from");
    assert_eq!(resumed.fingerprint(), want, "cold fallback is byte-identical");
    {
        let s = store.lock().expect("store lock poisoned");
        assert_eq!(s.counters().quarantined, 1, "the corrupt checkpoint was quarantined");
    }
    assert!(
        !ckpt_path.exists() || std::fs::read(&ckpt_path).expect("readable") != bytes,
        "the corrupt file must not linger as the live checkpoint"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_fingerprint_is_jobs_invariant() {
    let cfg = CoreConfig::default();
    // A small slice of the suite keeps this test fast while still
    // exercising cross-workload ordering under contention.
    let workloads: Vec<Workload> = ["pointer_chase", "stream_triad", "entropy_coder", "minimax"]
        .iter()
        .map(|n| by_name(n).expect("suite workload"))
        .collect();

    let serial = run_suite_sampled(&workloads, &cfg, INSTS, spec(), 1, None);
    let wide = run_suite_sampled(&workloads, &cfg, INSTS, spec(), 4, None);
    assert_eq!(serial.len(), workloads.len());
    assert_eq!(
        campaign_fingerprint(&serial),
        campaign_fingerprint(&wide),
        "campaign fingerprint must not depend on worker width"
    );
    for (a, b) in serial.iter().zip(&wide) {
        assert_eq!(a.fingerprint(), b.fingerprint(), "per-run fingerprints match across widths");
    }
}
