//! Observability-layer guarantees: determinism neutrality and the CPI
//! sum invariant.
//!
//! The obs layer (event trace ring, CPI stack, counter registry) must
//! be a pure *observer*: switching tracing on may never change a single
//! simulated value. These tests lock that property the strong way — a
//! traced and an untraced core run the same workload and must produce a
//! byte-identical `SimStats` rendering and the same always-on commit
//! fingerprint — and lock the CPI accountant's books: every retire slot
//! of every cycle lands in exactly one bucket, so the components sum to
//! `cycles × commit_width` on every workload in the suite.

use tvp_bench::experiments::vp_cfg;
use tvp_core::config::VpMode;
use tvp_core::pipeline::Core;
use tvp_obs::registry::METRICS_SCHEMA_VERSION;

/// Instruction budget: large enough for flushes, replays and cache
/// misses to occur (the interesting attribution cases), small enough
/// to keep the suite sweep fast.
const INSTS: u64 = 8_000;

#[test]
fn tracing_is_determinism_neutral() {
    for w in tvp_workloads::suite().into_iter().take(4) {
        let trace = w.trace(INSTS);
        let cfg = vp_cfg(VpMode::Tvp, true);

        let mut plain = Core::new(cfg.clone());
        let plain_stats = plain.run(&trace);
        assert!(!plain.tracing_enabled());

        let mut traced = Core::new(cfg);
        traced.enable_tracing(1024);
        assert!(traced.tracing_enabled());
        let traced_stats = traced.run(&trace);

        assert_eq!(
            format!("{plain_stats:?}"),
            format!("{traced_stats:?}"),
            "{}: tracing changed a simulated statistic",
            w.name
        );
        assert_eq!(
            plain.commit_fingerprint(),
            traced.commit_fingerprint(),
            "{}: tracing changed the committed instruction stream",
            w.name
        );
        assert!(!traced.trace_events().is_empty(), "{}: ring captured nothing", w.name);
        assert!(plain.trace_events().is_empty(), "{}: untraced core has events", w.name);
    }
}

#[test]
fn cpi_components_sum_to_cycles_times_width_on_every_workload() {
    for w in tvp_workloads::suite() {
        let trace = w.trace(INSTS);
        let cfg = vp_cfg(VpMode::Tvp, true);
        let width = cfg.commit_width as u64;
        let mut core = Core::new(cfg);
        let stats = core.run(&trace);
        let cpi = core.cpi_stack();
        assert_eq!(
            cpi.total(),
            stats.cycles * width,
            "{}: CPI stack books do not balance ({:?})",
            w.name,
            cpi
        );
        assert_eq!(cpi.base, stats.uops_retired, "{}: base component is retired µops", w.name);
    }
}

#[test]
fn cpi_sum_holds_under_every_vp_mode() {
    let w = tvp_workloads::suite().into_iter().next().expect("non-empty suite");
    let trace = w.trace(INSTS);
    for mode in [VpMode::Off, VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
        let cfg = vp_cfg(mode, false);
        let width = cfg.commit_width as u64;
        let mut core = Core::new(cfg);
        let stats = core.run(&trace);
        assert_eq!(
            core.cpi_stack().total(),
            stats.cycles * width,
            "{mode:?}: CPI stack books do not balance"
        );
    }
}

#[test]
fn registry_export_matches_stats_and_is_schema_versioned() {
    let w = tvp_workloads::suite().into_iter().next().expect("non-empty suite");
    let trace = w.trace(INSTS);
    let mut core = Core::new(vp_cfg(VpMode::Tvp, true));
    let stats = core.run(&trace);
    let reg = core.export_registry();

    let counter = |name: &str| -> u64 {
        reg.counters()
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("registry is missing `{name}`"))
            .1
    };
    assert_eq!(counter("core.cycles"), stats.cycles);
    assert_eq!(counter("core.uops_retired"), stats.uops_retired);
    assert_eq!(counter("cpi.total_slots"), core.cpi_stack().total());
    assert_eq!(counter("core.commit_fingerprint"), core.commit_fingerprint());
    // The memory and predictor walks contribute their scopes.
    for scope in ["mem.l1d.hits", "mem.dtlb.l1_hits", "tage.predictions", "vtage.lookups"] {
        let _ = counter(scope);
    }
    let json = reg.to_json();
    assert!(json.starts_with(&format!("{{\"schema\":{METRICS_SCHEMA_VERSION},")));
    assert!(reg.to_prometheus().contains("tvp_core_cycles"));
}
