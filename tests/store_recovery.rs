//! Durable-store crash recovery, end to end through the engine.
//!
//! The robustness contract under test: cold run ≡ warm run ≡
//! kill-at-an-arbitrary-point-then-resume, all byte-identical in
//! `results/*.json`; and a store damaged in any of the classic ways
//! (torn write, flipped bits, schema skew) quarantines the bad blob,
//! re-simulates it, and still converges on the identical results.
//!
//! Every test routes file output through [`RunOptions`] overrides —
//! no process-environment mutation — so the tests are safe to run on
//! parallel test threads.

use std::path::{Path, PathBuf};

use tvp_bench::engine::{self, EngineReport, RunOptions};
use tvp_bench::experiments::{vp_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use tvp_bench::jobs::{ExpKey, Job, SimPoint};
use tvp_bench::store::{
    blob, fsck, LoadOutcome, ResultStore, StoreConfig, BLOBS_DIR, QUARANTINE_DIR, TMP_DIR,
};
use tvp_core::config::VpMode;

/// Instruction budget: big enough for distinct per-config cycle
/// counts, small enough that each test runs several campaigns.
const INSTS: u64 = 2_000;

/// The campaign under test: three workloads × two VP flavours.
fn sweep_jobs(insts: u64) -> Vec<Job> {
    let mut jobs = Vec::new();
    for w in tvp_workloads::suite().into_iter().take(3) {
        for vp in [VpMode::Tvp, VpMode::Gvp] {
            jobs.push(Job::new(w.name, insts, vp_cfg(vp, true)));
        }
    }
    jobs
}

struct Sweep;

impl Experiment for Sweep {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        sweep_jobs(ctx.insts)
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        let rows: Vec<String> = sweep_jobs(ctx.insts)
            .into_iter()
            .map(|job| {
                let stats = results.stats(&job.key);
                format!(
                    "{{\"point\": \"{}\", \"cycles\": {}, \"insts\": {}}}",
                    job.key.display(),
                    stats.cycles,
                    stats.insts_retired
                )
            })
            .collect();
        vec![ResultFile { name: "store_sweep".to_owned(), json: format!("[{}]", rows.join(",")) }]
    }
}

fn experiments() -> Vec<Box<dyn Experiment>> {
    vec![Box::new(Sweep)]
}

/// Unique scratch root per test (tests run on parallel threads).
fn scratch(test: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tvp_store_recovery_{}_{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs the sweep campaign, returning the results file path and the
/// engine report. All output lands under `scratch`.
fn run_campaign(scratch: &Path, tag: &str, store: Option<&Path>) -> (PathBuf, EngineReport) {
    let results_dir = scratch.join(format!("results_{tag}"));
    let opts = RunOptions {
        workers: Some(2),
        insts: INSTS,
        store_dir: store.map(Path::to_path_buf),
        results_dir: Some(results_dir.to_string_lossy().into_owned()),
        telemetry_path: Some(
            scratch.join(format!("telemetry_{tag}.json")).to_string_lossy().into_owned(),
        ),
        ..RunOptions::default()
    };
    let report = engine::run(&experiments(), &opts);
    (results_dir.join("store_sweep.json"), report)
}

fn read_bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The blob file backing `key` in the store at `dir`.
fn blob_path(dir: &Path, key: &ExpKey) -> PathBuf {
    dir.join(BLOBS_DIR).join(format!("{:016x}.blob", key.digest()))
}

/// Files currently in a store's quarantine, as names.
fn quarantine_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir.join(QUARANTINE_DIR))
        .map(|entries| {
            entries.flatten().map(|e| e.file_name().to_string_lossy().into_owned()).collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

#[test]
fn warm_rerun_is_byte_identical_and_simulates_nothing() {
    let root = scratch("warm");
    let store = root.join("store");

    let (no_store_path, baseline) = run_campaign(&root, "nostore", None);
    let (cold_path, cold) = run_campaign(&root, "cold", Some(&store));
    let (warm_path, warm) = run_campaign(&root, "warm", Some(&store));

    assert!(baseline.failures.is_empty() && cold.failures.is_empty() && warm.failures.is_empty());
    let reference = read_bytes(&no_store_path);
    assert_eq!(read_bytes(&cold_path), reference, "attaching a store changed the results");
    assert_eq!(read_bytes(&warm_path), reference, "warm rerun changed the results");

    assert!(!baseline.telemetry.store_enabled);
    assert!(cold.telemetry.store_enabled && warm.telemetry.store_enabled);
    assert_eq!(cold.telemetry.store_warm_hits, 0, "first store run is fully cold");
    let unique = sweep_jobs(INSTS).len() as u64;
    assert_eq!(warm.telemetry.store_warm_hits, unique, "second run loads every point warm");
    assert_eq!(warm.telemetry.jobs_unique, 0, "nothing left to simulate");
    assert_eq!(warm.telemetry.quarantined, 0);
    assert_eq!(warm.telemetry.cache_conflicts, 0);

    let report = fsck::fsck(&store).expect("fsck");
    assert!(report.clean(), "healthy store must fsck clean: {}", report.summary());
    let _ = std::fs::remove_dir_all(&root);
}

/// Tiny deterministic PRNG for picking the kill point — the chaos is
/// seeded, so the "random" interruption is reproducible.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[test]
fn kill_at_seeded_random_point_then_resume_is_byte_identical() {
    let root = scratch("kill");
    let cold_store = root.join("cold_store");
    let (cold_path, cold) = run_campaign(&root, "cold", Some(&cold_store));
    assert!(cold.failures.is_empty());
    let reference = read_bytes(&cold_path);

    // Reconstruct the exact on-disk state a campaign killed
    // mid-manifest leaves behind: every key leased, a seeded-random
    // prefix of blobs published (journalled), one published blob
    // corrupted by a bit flip, a torn journal tail, and a stale
    // scratch file from the interrupted publication.
    let keys: Vec<ExpKey> = sweep_jobs(INSTS).into_iter().map(|j| j.key).collect();
    let mut source = ResultStore::open(StoreConfig::at(&cold_store)).expect("open cold store");
    let points: Vec<(ExpKey, SimPoint)> = keys
        .iter()
        .map(|k| match source.load(k) {
            LoadOutcome::Hit(p) => (k.clone(), *p),
            other => panic!("cold store must hold {}: {other:?}", k.display()),
        })
        .collect();

    let killed = root.join("killed_store");
    let mut seed = 0x9E37_79B9_7F4A_7C15;
    let survived: Vec<&(ExpKey, SimPoint)> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| *i == 0 || xorshift(&mut seed).is_multiple_of(2))
        .map(|(_, kp)| kp)
        .collect();
    assert!(survived.len() < points.len(), "the kill must interrupt something");
    {
        let mut store = ResultStore::open(StoreConfig::at(&killed)).expect("open killed store");
        store.lease_all(keys.iter()).expect("lease full campaign");
        for (k, p) in &survived {
            store.publish(k, p).expect("publish surviving blob");
        }
    }
    // Bit-flip the first survivor's blob (disk corruption on top of
    // the kill), tear the journal tail, and leave a stale tmp file.
    let victim = &survived[0].0;
    let victim_blob = blob_path(&killed, victim);
    let mut bytes = read_bytes(&victim_blob);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim_blob, &bytes).expect("corrupt blob");
    let journal = killed.join("journal.log");
    let mut text = std::fs::read_to_string(&journal).expect("read journal");
    text.push_str("done 00000000000000");
    std::fs::write(&journal, text).expect("tear journal tail");
    std::fs::write(killed.join(TMP_DIR).join("interrupted.tmp"), b"part").expect("stale tmp");

    // fsck sees the damage before the resume...
    let before = fsck::fsck(&killed).expect("fsck killed store");
    assert!(!before.clean(), "corrupted store must not fsck clean");
    assert_eq!(before.corrupt.len(), 1, "{:?}", before.corrupt);
    assert!(before.journal_torn_tail, "torn tail detected");
    assert!(before.pending > 0, "interrupted leases are pending");
    assert_eq!(before.tmp_stale, 1);

    // ...the resumed campaign repairs everything and reproduces the
    // cold results byte for byte.
    let (resumed_path, resumed) = run_campaign(&root, "resumed", Some(&killed));
    assert!(resumed.failures.is_empty() && resumed.skipped.is_empty());
    assert_eq!(read_bytes(&resumed_path), reference, "resume diverged from the cold run");
    assert_eq!(resumed.telemetry.quarantined, 1, "the flipped blob was quarantined");
    assert_eq!(
        resumed.telemetry.store_warm_hits,
        (survived.len() - 1) as u64,
        "every intact survivor loads warm"
    );
    assert_eq!(
        resumed.telemetry.jobs_unique,
        (points.len() - survived.len() + 1) as u64,
        "only interrupted + quarantined points re-simulate"
    );

    let after = fsck::fsck(&killed).expect("fsck resumed store");
    assert!(after.clean(), "resume must heal the store: {}", after.summary());
    assert_eq!(after.pending, 0, "no leases left open");
    assert_eq!(after.quarantined, 1, "evidence of the corruption is preserved");
    assert_eq!(after.tmp_stale, 0, "stale scratch swept");
    let names = quarantine_names(&killed);
    assert!(
        names[0].starts_with(&format!("{:016x}.", victim.digest())),
        "quarantine file {} names the corrupt digest",
        names[0]
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn schema_version_skew_is_quarantined_and_resimulated() {
    let root = scratch("schema");
    let store = root.join("store");
    let (cold_path, _) = run_campaign(&root, "cold", Some(&store));
    let reference = read_bytes(&cold_path);

    // Rewrite one blob as a future schema version with a *valid*
    // checksum — the reseal proves the schema gate itself rejects it,
    // not merely the checksum.
    let victim = sweep_jobs(INSTS).remove(0).key;
    let path = blob_path(&store, &victim);
    let mut bytes = read_bytes(&path);
    bytes[8..12].copy_from_slice(&(blob::BLOB_SCHEMA + 1).to_le_bytes());
    let len = bytes.len();
    let resealed = blob::fnv1a(&bytes[..len - blob::CHECKSUM_LEN]);
    bytes[len - blob::CHECKSUM_LEN..].copy_from_slice(&resealed.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write skewed blob");

    let (rerun_path, rerun) = run_campaign(&root, "rerun", Some(&store));
    assert!(rerun.failures.is_empty());
    assert_eq!(read_bytes(&rerun_path), reference, "schema skew changed the results");
    assert_eq!(rerun.telemetry.quarantined, 1);
    let names = quarantine_names(&store);
    assert_eq!(names.len(), 1);
    assert!(names[0].contains(".schema."), "quarantine name {} carries the reason", names[0]);
    assert!(fsck::fsck(&store).expect("fsck").clean(), "re-publication healed the store");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_blob_write_is_detected_and_healed_on_rerun() {
    let root = scratch("torn");
    let store = root.join("store");
    let (cold_path, _) = run_campaign(&root, "cold", Some(&store));
    let reference = read_bytes(&cold_path);

    // Truncate a blob mid-body — the signature of a torn write that
    // bypassed the tmp+rename protocol (e.g. filesystem damage).
    let victim = sweep_jobs(INSTS).remove(1).key;
    let path = blob_path(&store, &victim);
    let bytes = read_bytes(&path);
    std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate blob");

    let (rerun_path, rerun) = run_campaign(&root, "rerun", Some(&store));
    assert!(rerun.failures.is_empty());
    assert_eq!(read_bytes(&rerun_path), reference, "torn blob changed the results");
    assert_eq!(rerun.telemetry.quarantined, 1);
    let names = quarantine_names(&store);
    assert_eq!(names.len(), 1);
    assert!(names[0].contains(".torn."), "quarantine name {} carries the reason", names[0]);
    assert!(fsck::fsck(&store).expect("fsck").clean());
    let _ = std::fs::remove_dir_all(&root);
}
