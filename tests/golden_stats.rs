//! Golden-snapshot regression layer: per-workload commit fingerprints
//! and key statistics under the default Table 2 configuration.
//!
//! Every workload in the bundled suite is simulated at a fixed budget
//! with the paper's full TVP+SpSR configuration, and the resulting
//! statistics are compared line-by-line against the checked-in
//! snapshot at `tests/golden/golden_stats.txt`. The snapshot locks:
//!
//! - a **commit fingerprint** — FNV-1a over the `Debug` rendering of
//!   the complete `SimStats`, so *any* counter drift is caught, not
//!   just the headline numbers;
//! - the headline numbers themselves (cycles, retired µops, IPC, VP
//!   coverage, SpSR conversions), so a mismatch names the statistic
//!   that moved in human units rather than only a hash.
//!
//! On an intentional behaviour change, regenerate with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --release -p tvp-harness --test golden_stats
//! ```
//!
//! and review the snapshot diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use tvp_bench::experiments::vp_cfg;
use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate;

/// Fixed budget: small enough to keep the suite fast, large enough
/// that predictors warm up and SpSR conversions occur.
const INSTS: u64 = 20_000;

/// FNV-1a over a string — the commit fingerprint primitive.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/harness; the snapshot lives next to
    // the integration tests at the repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/golden_stats.txt")
}

/// Renders the current per-workload snapshot, one `workload field
/// value` triple per line, in suite order.
fn render_snapshot() -> String {
    let cfg = vp_cfg(VpMode::Tvp, true);
    let mut out = String::new();
    let _ = writeln!(out, "# golden stats: suite @ {INSTS} insts, Table 2 + TVP + SpSR");
    let _ = writeln!(
        out,
        "# regenerate: GOLDEN_UPDATE=1 cargo test --release -p tvp-harness --test golden_stats"
    );
    for w in tvp_workloads::suite::suite() {
        let trace = w.trace(INSTS);
        let stats = simulate(cfg.clone(), &trace);
        let name = w.name;
        let _ = writeln!(out, "{name} fingerprint {:016x}", fnv1a(&format!("{stats:?}")));
        let _ = writeln!(out, "{name} cycles {}", stats.cycles);
        let _ = writeln!(out, "{name} insts_retired {}", stats.insts_retired);
        let _ = writeln!(out, "{name} uops_retired {}", stats.uops_retired);
        let _ = writeln!(out, "{name} ipc {:.6}", stats.ipc());
        let _ = writeln!(out, "{name} vp_coverage {:.6}", stats.vp.coverage());
        let _ = writeln!(out, "{name} vp_used {}", stats.vp.used);
        let _ = writeln!(out, "{name} spsr_conversions {}", stats.rename.spsr);
        let _ = writeln!(out, "{name} spsr_squashed {}", stats.rename.spsr_squashed);
        let _ = writeln!(out, "{name} vp_flushes {}", stats.flush.vp_flushes);
    }
    out
}

#[test]
fn suite_matches_golden_snapshot() {
    let actual = render_snapshot();
    let path = golden_path();

    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, &actual).expect("write golden snapshot");
        println!("golden snapshot regenerated at {}", path.display());
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden snapshot at {} ({e}); generate one with \
             GOLDEN_UPDATE=1 cargo test --release -p tvp-harness --test golden_stats",
            path.display()
        )
    });

    if expected == actual {
        return;
    }

    // Build a clear field-level diff instead of dumping both files.
    let mut diff = String::new();
    let exp_lines: Vec<&str> = expected.lines().collect();
    let act_lines: Vec<&str> = actual.lines().collect();
    for i in 0..exp_lines.len().max(act_lines.len()) {
        let e = exp_lines.get(i).copied().unwrap_or("<missing>");
        let a = act_lines.get(i).copied().unwrap_or("<missing>");
        if e != a {
            let _ = writeln!(diff, "  line {:>4}: golden  {e}", i + 1);
            let _ = writeln!(diff, "  line {:>4}: actual  {a}", i + 1);
        }
    }
    panic!(
        "golden stats drifted ({} differing line(s)):\n{diff}\
         if the change is intentional, regenerate with \
         GOLDEN_UPDATE=1 cargo test --release -p tvp-harness --test golden_stats \
         and review the snapshot diff",
        diff.lines().count() / 2
    );
}

#[test]
fn snapshot_rendering_is_stable_within_a_process() {
    // The golden layer is only sound if rendering itself is
    // deterministic; lock that independently of the checked-in file.
    let w = tvp_workloads::suite::by_name("mc_playout").expect("bundled workload");
    let cfg = vp_cfg(VpMode::Tvp, true);
    let trace = w.trace(5_000);
    let a = simulate(cfg.clone(), &trace);
    let b = simulate(cfg, &trace);
    assert_eq!(fnv1a(&format!("{a:?}")), fnv1a(&format!("{b:?}")), "same trace, same stats");
}
