//! End-to-end invariant audit: the full workload suite runs with the
//! cycle-level auditors enabled and must produce zero violations, in
//! every value-prediction flavour. Requires the `verif` feature
//! (`cargo test --features verif`).

use tvp_core::{Core, CoreConfig, VpMode};

/// Runs `kernel` for `n` instructions under `vp`/`spsr` with frequent
/// audits and returns the rendered violations (empty when clean).
fn audit_run(kernel: &str, n: u64, vp: VpMode, spsr: bool) -> String {
    let workload = tvp_workloads::suite::by_name(kernel).expect("kernel exists");
    let trace = workload.trace(n);
    let mut cfg = CoreConfig::with_vp(vp);
    cfg.spsr = spsr;
    cfg.audit_every = 64;
    let mut core = Core::new(cfg);
    let _stats = core.run(&trace);
    core.audit_report().render()
}

#[test]
fn full_suite_is_invariant_clean_under_tvp_spsr() {
    // The paper's headline configuration, across the whole suite.
    for w in tvp_workloads::suite() {
        let rendered = audit_run(w.name, 20_000, VpMode::Tvp, true);
        assert!(rendered.is_empty(), "{}:\n{rendered}", w.name);
    }
}

#[test]
fn every_vp_mode_is_invariant_clean() {
    // One representative kernel through every VP flavour (GVP includes
    // wide PRF writes and replay-prone predictions).
    for vp in [VpMode::Off, VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
        for spsr in [false, true] {
            let rendered = audit_run("mc_playout", 15_000, vp, spsr);
            assert!(rendered.is_empty(), "vp={vp:?} spsr={spsr}:\n{rendered}");
        }
    }
}

#[test]
fn replay_recovery_is_invariant_clean() {
    // The selective-replay recovery path rewires IQ occupancy and
    // register readiness; the auditors must stay clean through it.
    let workload = tvp_workloads::suite::by_name("pointer_chase").expect("kernel exists");
    let trace = workload.trace(15_000);
    let mut cfg = CoreConfig::with_vp(VpMode::Gvp);
    cfg.recovery = tvp_core::config::RecoveryPolicy::Replay;
    cfg.audit_every = 16;
    let mut core = Core::new(cfg);
    let _stats = core.run(&trace);
    let report = core.audit_report();
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn storage_report_fits_table2_budgets() {
    // Every structure the core instantiates must have a Table 2 budget
    // on file and fit under it — checked here directly, in addition to
    // the end-of-run assertion inside `Core::run`.
    for vp in [VpMode::Off, VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
        let core = Core::new(CoreConfig::with_vp(vp));
        let report = core.storage_report();
        assert!(report.len() >= 10, "expected a full report, got {report:?}");
        let violations =
            tvp_verif::budget::check_budgets(&tvp_verif::budget::table2_budgets(), &report);
        assert!(violations.is_empty(), "vp={vp:?}: {violations:?}");
    }
}
