//! Sampled-vs-full accuracy across the whole workload suite.
//!
//! Every suite workload is simulated twice under the paper's headline
//! TVP + SpSR configuration: once in full detail (the reference) and
//! once through the sampled-simulation path (fast-forward + functional
//! warming + detailed windows, weighted reconstruction). The headline
//! statistics — IPC, branch MPKI, VP MPKI, SpSR coverage — must agree
//! within the declared per-stat error bounds
//! ([`tvp_bench::sampling::DEFAULT_BOUNDS`]), and a machine-readable
//! error report is written as a test artifact.
//!
//! The bounds are empirical worst-case-plus-headroom, not aspirations:
//! loosening them is a regression, and a methodology change that
//! tightens them (longer functional warming, smarter interval
//! placement) should ratchet them down.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tvp_bench::sampling::{run_sampled, SampleRunOptions, SampleSpec, StatErrors, DEFAULT_BOUNDS};
use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::Core;

/// Stream length per workload: long enough that sampling fast-forwards
/// most of it, short enough for the full-detail reference runs.
const INSTS: u64 = 60_000;

/// The accuracy-test sampling spec: 3 intervals of 20k, each ending in
/// 8k detailed warmup + 2k measured (the skip tail is functionally
/// warmed). [`DEFAULT_BOUNDS`] was calibrated at exactly this spec.
fn spec() -> SampleSpec {
    SampleSpec::new(20_000, 8_000, 2_000).expect("accuracy spec is valid")
}

/// Unique artifact path per process (tests run on parallel threads,
/// but this file is written once by the one test that produces it).
fn report_path() -> PathBuf {
    std::env::temp_dir().join(format!("tvp_sampling_error_report_{}.json", std::process::id()))
}

#[test]
fn every_workload_reconstructs_within_declared_bounds() {
    let cfg = CoreConfig::with_vp(VpMode::Tvp).with_spsr();
    let workloads = tvp_workloads::suite();

    // Full + sampled per workload on a scoped worker pool; slot
    // assembly keeps the report in suite order regardless of
    // scheduling.
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let slots: Vec<Mutex<Option<StatErrors>>> =
        workloads.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(workloads.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workloads.get(i) else { break };
                let trace = w.machine().run(INSTS);
                let full = Core::new(cfg.clone()).run(&trace);
                let run = run_sampled(w, &cfg, INSTS, spec(), SampleRunOptions::default());
                let errors = StatErrors::compare(w.name, &full, &run.estimate());
                *slots[i].lock().expect("slot lock poisoned") = Some(errors);
            });
        }
    });
    let results: Vec<StatErrors> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock poisoned").expect("worker filled every slot"))
        .collect();
    assert_eq!(results.len(), workloads.len(), "one comparison per suite workload");

    // Machine-readable artifact first, so a bounds failure still
    // leaves the full error table behind for diagnosis.
    let rows: Vec<String> = results.iter().map(|e| e.to_json(&DEFAULT_BOUNDS)).collect();
    let report = tvp_bench::json::object(&[
        ("insts", INSTS.to_string()),
        ("spec", format!("\"{}\"", spec().display())),
        ("bounds_ipc_rel", tvp_bench::json::number(DEFAULT_BOUNDS.ipc_rel)),
        ("bounds_branch_mpki_abs", tvp_bench::json::number(DEFAULT_BOUNDS.branch_mpki_abs)),
        ("bounds_vp_mpki_abs", tvp_bench::json::number(DEFAULT_BOUNDS.vp_mpki_abs)),
        ("bounds_spsr_coverage_abs", tvp_bench::json::number(DEFAULT_BOUNDS.spsr_coverage_abs)),
        ("workloads", tvp_bench::json::array(&rows)),
    ]);
    let path = report_path();
    std::fs::write(&path, &report).expect("error report artifact writes");

    let mut violations = Vec::new();
    for e in &results {
        for v in e.violations(&DEFAULT_BOUNDS) {
            violations.push(format!("{}: {v}", e.workload));
        }
    }
    assert!(
        violations.is_empty(),
        "sampled reconstruction out of bounds (full report: {}):\n{}",
        path.display(),
        violations.join("\n")
    );

    // The reconstruction must also be exact where exactness is
    // structural: weights covering the entire stream is already
    // asserted inside run_sampled's unit tests; here, spot-check that
    // the estimate is not degenerate (nonzero cycles and IPC for every
    // workload).
    for e in &results {
        assert!(e.sampled.ipc() > 0.0, "{}: degenerate sampled IPC", e.workload);
        assert!(e.full.ipc() > 0.0, "{}: degenerate full IPC", e.workload);
    }
    let _ = std::fs::remove_file(&path);
}
