//! SpSR end-to-end: eliminations appear, reduce back-end activity and
//! never corrupt retirement; the width restriction and frontend NZCV
//! behave across crates.

use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate_vp;
use tvp_workloads::suite::suite;

const INSTS: u64 = 30_000;

#[test]
fn spsr_reduces_iq_activity_without_hurting_much() {
    // Fig. 6's headline: SpSR cuts dispatched/issued µops. Speed may
    // move either way slightly (§6.2), but not catastrophically.
    let mut total_disp_plain = 0u64;
    let mut total_disp_spsr = 0u64;
    for w in suite() {
        let trace = w.trace(INSTS);
        let plain = simulate_vp(VpMode::Tvp, false, &trace);
        let spsr = simulate_vp(VpMode::Tvp, true, &trace);
        assert_eq!(spsr.insts_retired, trace.arch_insts, "{}", w.name);
        total_disp_plain += plain.activity.iq_dispatched;
        total_disp_spsr += spsr.activity.iq_dispatched;
        let slowdown = (plain.cycles as f64 / spsr.cycles as f64 - 1.0) * 100.0;
        assert!(slowdown > -5.0, "{}: SpSR slowed things by {:.2}%", w.name, -slowdown);
    }
    assert!(
        total_disp_spsr < total_disp_plain,
        "suite-wide IQ dispatches must drop: {total_disp_spsr} vs {total_disp_plain}"
    );
}

#[test]
fn spsr_requires_value_prediction_to_fire_beyond_statics() {
    // With VP off, SpSR has no dynamic value knowledge: only
    // hardwired-name knowledge produced by static DSR remains, so the
    // SpSR count collapses on kernels whose idioms are value-driven.
    let w = tvp_workloads::suite::by_name("mc_playout").unwrap();
    let trace = w.trace(INSTS);
    let no_vp = simulate_vp(VpMode::Off, true, &trace);
    let mvp = simulate_vp(VpMode::Mvp, true, &trace);
    assert!(
        mvp.rename.spsr > no_vp.rename.spsr * 2,
        "predictions must unlock reductions: {} vs {}",
        mvp.rename.spsr,
        no_vp.rename.spsr
    );
}

#[test]
fn spsr_counts_scale_with_trace_length() {
    let w = tvp_workloads::suite::by_name("mc_playout").unwrap();
    let short = w.trace(INSTS);
    let long = w.trace(INSTS * 3);
    let s_short = simulate_vp(VpMode::Mvp, true, &short);
    let s_long = simulate_vp(VpMode::Mvp, true, &long);
    // Confidence warms up, so the long run should reduce a *larger
    // fraction*, not merely more instructions.
    let f_short = s_short.rename.fraction(s_short.rename.spsr);
    let f_long = s_long.rename.fraction(s_long.rename.spsr);
    assert!(
        f_long >= f_short * 0.9,
        "SpSR fraction should not collapse over time: {f_short} → {f_long}"
    );
}

#[test]
fn nine_bit_idiom_only_fires_with_inlining() {
    let w = tvp_workloads::suite::by_name("pixel_encode").unwrap();
    let trace = w.trace(INSTS);
    let mvp = simulate_vp(VpMode::Mvp, true, &trace);
    let tvp = simulate_vp(VpMode::Tvp, true, &trace);
    assert_eq!(mvp.rename.nine_bit_idiom, 0, "MVP has no widened names");
    assert!(tvp.rename.nine_bit_idiom > 0, "TVP inlines movz #imm9");
}

#[test]
fn width_restricted_moves_are_counted_not_eliminated() {
    let w = tvp_workloads::suite::by_name("weather_loop").unwrap();
    let trace = w.trace(INSTS);
    let s = simulate_vp(VpMode::Off, false, &trace);
    assert!(s.rename.non_me_move > 0, "w-moves of 64-bit defs must be blocked");
    assert!(s.rename.move_elim > 0, "plain moves must still eliminate");
}

#[test]
fn spsr_squash_bookkeeping_is_consistent() {
    let w = tvp_workloads::suite::by_name("mc_playout").unwrap();
    let trace = w.trace(INSTS);
    let s = simulate_vp(VpMode::Mvp, true, &trace);
    assert!(
        s.rename.spsr_squashed <= s.rename.spsr,
        "cannot squash more reductions than were made"
    );
}
