//! Determinism guarantees of the parallel experiment engine.
//!
//! The engine's core contract (ISSUE: "`--jobs 1` and `--jobs N` are
//! byte-identical") rests on three properties, each locked here:
//!
//! 1. a [`SimPoint`] is a pure function of its [`ExpKey`] — running the
//!    same job twice yields an identical point;
//! 2. the worker count is invisible in the assembled output — the same
//!    job grid run serially and on a wide pool produces byte-identical
//!    JSON artefacts;
//! 3. chaos-seeded points (fault-injection campaigns) replay exactly,
//!    even when scheduled concurrently with other work.

use tvp_bench::cache::ResultCache;
use tvp_bench::experiments::{vp_cfg, ExpContext, Experiment, ResultSet};
use tvp_bench::jobs::Job;
use tvp_bench::prepare_suite;
use tvp_bench::runner::run_jobs;
use tvp_core::config::{CoreConfig, VpMode};

/// Small budget: each simulation point is a few milliseconds.
const INSTS: u64 = 2_000;

/// Runs `jobs` at the given pool width and returns the populated
/// cache, asserting no job failed.
fn run_into_cache(
    jobs: &[Job],
    prepared: &[tvp_bench::PreparedWorkload],
    workers: usize,
) -> ResultCache {
    let mut cache = ResultCache::new();
    for job in jobs {
        cache.request(job);
    }
    let schedule = cache.take_scheduled();
    let outcome = run_jobs(
        &schedule,
        |name| {
            &prepared
                .iter()
                .find(|p| p.workload.name == name)
                .expect("job references a prepared workload")
                .trace
        },
        workers,
        false,
    );
    assert!(outcome.failures.is_empty(), "unexpected failures: {:?}", outcome.failures);
    for (key, point) in outcome.points {
        cache.insert(key, point);
    }
    cache
}

#[test]
fn same_key_simulates_to_the_same_point() {
    let prepared = prepare_suite(INSTS);
    let job = Job::new("mc_playout", INSTS, vp_cfg(VpMode::Tvp, true));

    let a = run_into_cache(std::slice::from_ref(&job), &prepared, 1);
    let b = run_into_cache(std::slice::from_ref(&job), &prepared, 1);
    let pa = a.get(&job.key).expect("point simulated");
    let pb = b.get(&job.key).expect("point simulated");
    assert_eq!(pa, pb, "SimPoint must be a pure function of its ExpKey");
}

#[test]
fn serial_and_parallel_grids_assemble_byte_identical_json() {
    // A real experiment grid: fig2 spans every workload under three
    // configurations, sharing the DSR baseline with other figures.
    let exp = tvp_bench::experiments::fig2::Fig2;
    let ctx = ExpContext { insts: INSTS, prepared: prepare_suite(INSTS) };
    let jobs = exp.jobs(&ctx);
    assert!(jobs.len() > 10, "fig2 should enumerate a real grid, got {}", jobs.len());

    let serial = run_into_cache(&jobs, &ctx.prepared, 1);
    let parallel = run_into_cache(&jobs, &ctx.prepared, 4);

    let files_serial = exp.assemble(&ctx, &ResultSet::new(&serial));
    let files_parallel = exp.assemble(&ctx, &ResultSet::new(&parallel));
    assert_eq!(files_serial.len(), files_parallel.len());
    for (s, p) in files_serial.iter().zip(&files_parallel) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.json, p.json, "results JSON must not depend on the worker count");
    }
}

#[test]
fn pool_width_does_not_change_any_point() {
    // Same grid, three pool widths, compare every cached point (a
    // stronger form of the JSON check: no aggregation masks drift).
    let exp = tvp_bench::experiments::fig6::Fig6;
    let ctx = ExpContext { insts: INSTS, prepared: prepare_suite(INSTS) };
    let jobs = exp.jobs(&ctx);

    let one = run_into_cache(&jobs, &ctx.prepared, 1);
    let three = run_into_cache(&jobs, &ctx.prepared, 3);
    let eight = run_into_cache(&jobs, &ctx.prepared, 8);
    for job in &jobs {
        let p1 = one.get(&job.key).expect("point");
        let p3 = three.get(&job.key).expect("point");
        let p8 = eight.get(&job.key).expect("point");
        assert_eq!(p1, p3, "{}", job.key.display());
        assert_eq!(p1, p8, "{}", job.key.display());
    }
}

#[test]
fn chaos_seeded_points_replay_identically() {
    let prepared = prepare_suite(INSTS);
    let mk = |seed: u64| -> Job {
        let cfg =
            CoreConfig::with_vp(VpMode::Tvp).with_chaos(tvp_chaos::ChaosConfig::campaign(seed));
        Job::new("pointer_chase", INSTS, cfg)
    };
    // Two distinct campaigns plus a quiet point, scheduled together on
    // a multi-worker pool, twice.
    let jobs = vec![
        mk(0xDEAD_BEEF),
        mk(0x1234_5678),
        Job::new("pointer_chase", INSTS, vp_cfg(VpMode::Tvp, true)),
    ];
    let a = run_into_cache(&jobs, &prepared, 3);
    let b = run_into_cache(&jobs, &prepared, 3);
    for job in &jobs {
        assert_eq!(
            a.get(&job.key).expect("point"),
            b.get(&job.key).expect("point"),
            "chaos campaign must replay exactly: {}",
            job.key.display()
        );
    }
    // Distinct seeds are distinct points: the chaos engine actually
    // perturbed the run.
    let k1 = &jobs[0].key;
    let k2 = &jobs[1].key;
    assert_ne!(k1, k2, "seed is part of the key");
    assert_ne!(
        a.get(k1).expect("point").stats.chaos.total(),
        0,
        "campaign config must inject faults"
    );
}
