//! Cross-crate integration: every kernel × every configuration retires
//! exactly its trace, deterministically, with self-consistent counters.

use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::{simulate, simulate_vp};
use tvp_workloads::suite::suite;

const INSTS: u64 = 12_000;

#[test]
fn every_kernel_retires_exactly_under_every_config() {
    for w in suite() {
        let trace = w.trace(INSTS);
        for vp in [VpMode::Off, VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
            for spsr in [false, true] {
                let s = simulate_vp(vp, spsr, &trace);
                assert_eq!(
                    s.insts_retired, trace.arch_insts,
                    "{} under {vp:?}/spsr={spsr}: lost instructions",
                    w.name
                );
                assert_eq!(
                    s.uops_retired,
                    trace.uops.len() as u64,
                    "{} under {vp:?}/spsr={spsr}: lost µops",
                    w.name
                );
                assert!(s.cycles > 0);
            }
        }
    }
}

#[test]
fn simulation_is_deterministic_per_config() {
    let w = tvp_workloads::suite::by_name("minimax").unwrap();
    let trace = w.trace(INSTS);
    for vp in [VpMode::Off, VpMode::Gvp] {
        let a = simulate_vp(vp, true, &trace);
        let b = simulate_vp(vp, true, &trace);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.flush.vp_flushes, b.flush.vp_flushes);
        assert_eq!(a.activity.int_prf_reads, b.activity.int_prf_reads);
        assert_eq!(a.rename.spsr, b.rename.spsr);
    }
}

#[test]
fn counter_consistency_invariants() {
    for name in ["string_match", "pointer_chase", "stream_triad"] {
        let w = tvp_workloads::suite::by_name(name).unwrap();
        let trace = w.trace(INSTS);
        let s = simulate_vp(VpMode::Tvp, true, &trace);
        let r = s.rename;
        let eliminated = r.zero_idiom + r.one_idiom + r.move_elim + r.nine_bit_idiom + r.spsr;
        // Every renamed µop either entered the IQ or was eliminated
        // (rename counters include squashed-and-replayed µops, so ≥).
        assert!(
            s.activity.iq_dispatched + eliminated >= s.uops_retired,
            "{name}: dispatch + eliminations < retired µops"
        );
        // Issues cannot exceed dispatches.
        assert!(s.activity.iq_issued <= s.activity.iq_dispatched, "{name}");
        // VP accounting: used ⊆ eligible; outcomes partition used.
        assert!(s.vp.used <= s.vp.eligible, "{name}");
        assert!(
            s.vp.correct_used + s.vp.incorrect_used <= s.vp.used + s.flush.squashed_uops,
            "{name}"
        );
    }
}

#[test]
fn smaller_window_is_never_faster() {
    let w = tvp_workloads::suite::by_name("pointer_chase").unwrap();
    let trace = w.trace(INSTS);
    let big = simulate(CoreConfig::table2(), &trace);
    let mut small_cfg = CoreConfig::table2();
    small_cfg.rob_size = 64;
    small_cfg.iq_size = 24;
    let small = simulate(small_cfg, &trace);
    assert!(
        small.cycles >= big.cycles,
        "shrinking ROB/IQ should not speed anything up: {} vs {}",
        small.cycles,
        big.cycles
    );
}

#[test]
fn narrower_machine_is_never_faster() {
    let w = tvp_workloads::suite::by_name("image_filter").unwrap();
    let trace = w.trace(INSTS);
    let wide = simulate(CoreConfig::table2(), &trace);
    let mut narrow_cfg = CoreConfig::table2();
    narrow_cfg.rename_width = 2;
    narrow_cfg.commit_width = 2;
    let narrow = simulate(narrow_cfg, &trace);
    assert!(narrow.cycles > wide.cycles, "a 2-wide machine must be slower on a high-IPC kernel");
}

#[test]
fn prefetcher_helps_streaming_workloads() {
    let w = tvp_workloads::suite::by_name("stream_triad").unwrap();
    let trace = w.trace(INSTS);
    let on = simulate(CoreConfig::table2(), &trace);
    let mut off_cfg = CoreConfig::table2();
    off_cfg.mem.stride_prefetcher = false;
    off_cfg.mem.ampm_prefetcher = false;
    let off = simulate(off_cfg, &trace);
    assert!(
        on.cycles < off.cycles,
        "prefetching must help a stream: {} vs {}",
        on.cycles,
        off.cycles
    );
}
