//! `run_all` failure handling: a panicking simulation point must not
//! abort the run. The engine reports the failed job by key, skips only
//! the experiments that depend on it, assembles everything else, and
//! exits non-zero.
//!
//! The poison job uses `watchdog_cycles = 1`: the deadlock watchdog
//! trips on the first cycle and `simulate` panics with its diagnostic —
//! a deterministic in-job panic with no special-casing in the engine.

use tvp_bench::engine::{self, RunOptions};
use tvp_bench::experiments::{vp_cfg, ExpContext, Experiment, ResultFile, ResultSet};
use tvp_bench::jobs::Job;
use tvp_core::config::VpMode;

/// An experiment whose single point cannot simulate.
struct Poisoned;

impl Experiment for Poisoned {
    fn name(&self) -> &'static str {
        "poisoned"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        let mut cfg = vp_cfg(VpMode::Tvp, true);
        cfg.watchdog_cycles = 1; // trips immediately → simulate panics
        vec![Job::new("mc_playout", ctx.insts, cfg)]
    }

    fn assemble(&self, _ctx: &ExpContext, _results: &ResultSet<'_>) -> Vec<ResultFile> {
        unreachable!("assemble must not run for an experiment with a failed point")
    }
}

/// A healthy single-point experiment that must still complete.
struct Healthy;

impl Experiment for Healthy {
    fn name(&self) -> &'static str {
        "healthy"
    }

    fn jobs(&self, ctx: &ExpContext) -> Vec<Job> {
        vec![Job::new("mc_playout", ctx.insts, vp_cfg(VpMode::Tvp, true))]
    }

    fn assemble(&self, ctx: &ExpContext, results: &ResultSet<'_>) -> Vec<ResultFile> {
        let key = Job::new("mc_playout", ctx.insts, vp_cfg(VpMode::Tvp, true)).key;
        assert!(results.stats(&key).cycles > 0);
        vec![ResultFile { name: "healthy_probe".to_owned(), json: "[]".to_owned() }]
    }
}

#[test]
fn failed_job_is_reported_and_the_rest_of_the_run_completes() {
    // Route the engine's file output into a scratch directory — this
    // test exercises the real end-to-end path, including result and
    // telemetry writes.
    let scratch = std::env::temp_dir().join(format!("tvp_engine_failures_{}", std::process::id()));
    let results_dir = scratch.join("results");
    let telemetry = scratch.join("BENCH_parallel_runner.json");
    // Safety: this integration-test binary contains a single #[test],
    // so no concurrent thread observes the environment mutation.
    std::env::set_var("TVP_RESULTS_DIR", &results_dir);
    std::env::set_var("TVP_BENCH_TELEMETRY", &telemetry);

    let experiments: Vec<Box<dyn Experiment>> = vec![Box::new(Poisoned), Box::new(Healthy)];
    let opts = RunOptions { workers: Some(2), insts: 2_000, ..RunOptions::default() };
    let report = engine::run(&experiments, &opts);

    // The poisoned point failed, with its key, and its panic payload
    // carries the watchdog diagnostic.
    assert_eq!(report.failures.len(), 1, "exactly the poisoned job fails");
    let failure = &report.failures[0];
    assert_eq!(failure.key.workload, "mc_playout");
    assert!(
        failure.panic.contains("deadlock"),
        "panic payload should carry the watchdog deadlock diagnostic, got: {}",
        failure.panic
    );
    assert_eq!(
        failure.attempts,
        tvp_bench::runner::MAX_ATTEMPTS,
        "a deterministic panic burns its single bounded retry before being reported"
    );
    assert_eq!(report.telemetry.retries, 1, "telemetry counts the retried job");

    // Only the poisoned experiment was skipped; the healthy one
    // assembled and wrote its artefact.
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].0, "poisoned");
    assert!(results_dir.join("healthy_probe.json").is_file(), "healthy experiment still writes");

    // Telemetry records the failure and the process exits non-zero.
    assert_eq!(report.telemetry.jobs_failed, 1);
    assert!(telemetry.is_file(), "telemetry written even on failure");
    assert_eq!(engine::exit_code(&report), 1);

    let _ = std::fs::remove_dir_all(&scratch);
}
