//! Property-based integration tests: randomly generated programs must
//! execute functionally, trace consistently and retire exactly through
//! the timing pipeline under any configuration.

use proptest::prelude::*;
use tvp_core::config::VpMode;
use tvp_core::pipeline::simulate_vp;
use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::{AddrMode, Inst};
use tvp_isa::reg::x;
use tvp_workloads::program::Asm;
use tvp_workloads::Machine;

/// One random straight-line instruction over scratch registers
/// x0–x7, data pointer x20.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let reg = 0u8..8;
    prop_oneof![
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| add(x(d), x(a), x(b))),
        (reg.clone(), reg.clone(), -64i64..64).prop_map(|(d, a, i)| sub(x(d), x(a), i)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| and(x(d), x(a), x(b))),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| eor(x(d), x(a), x(b))),
        (reg.clone(), reg.clone(), 0i64..63).prop_map(|(d, a, s)| lsl(x(d), x(a), s)),
        (reg.clone(), reg.clone(), 0i64..63).prop_map(|(d, a, s)| lsr(x(d), x(a), s)),
        (reg.clone(), -256i64..256).prop_map(|(d, i)| movz(x(d), i)),
        (reg.clone(), reg.clone()).prop_map(|(d, a)| mov(x(d), x(a))),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| mul(x(d), x(a), x(b))),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| adds(x(d), x(a), x(b))),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| csel(
            x(d),
            x(a),
            x(b),
            Cond::Eq
        )),
        (reg.clone(), 0i64..256)
            .prop_map(|(d, o)| { ldr(x(d), AddrMode::BaseDisp { base: x(20), disp: o * 8 }) }),
        (reg.clone(), 0i64..256)
            .prop_map(|(s, o)| { str(x(s), AddrMode::BaseDisp { base: x(20), disp: o * 8 }) }),
        (reg, 0i64..128).prop_map(|(d, o)| {
            ldr_sized(x(d), AddrMode::BaseDisp { base: x(20), disp: o }, 1, false)
        }),
    ]
}

fn program_of(insts: &[Inst], loop_count: i64) -> tvp_workloads::Trace {
    let mut a = Asm::new();
    a.i(movz(x(9), loop_count));
    a.label("top");
    for i in insts {
        a.i(*i);
    }
    a.i(subs(x(9), x(9), 1i64));
    a.b_cond(Cond::Ne, "top");
    let mut m = Machine::new(a.assemble().expect("random program assembles"));
    m.set_reg(x(20), 0x40_0000);
    for i in 0..512u64 {
        m.write_mem(0x40_0000 + i * 8, 8, i.wrapping_mul(0x9E37));
    }
    m.run(20_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_retire_exactly(
        insts in proptest::collection::vec(arb_inst(), 1..24),
        loops in 8i64..64,
    ) {
        let trace = program_of(&insts, loops);
        prop_assert!(trace.arch_insts > 0);
        for vp in [VpMode::Off, VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
            let s = simulate_vp(vp, true, &trace);
            prop_assert_eq!(s.insts_retired, trace.arch_insts);
            prop_assert_eq!(s.uops_retired, trace.uops.len() as u64);
        }
    }

    #[test]
    fn traces_replay_identically(
        insts in proptest::collection::vec(arb_inst(), 1..16),
    ) {
        let a = program_of(&insts, 16);
        let b = program_of(&insts, 16);
        prop_assert_eq!(a.uops.len(), b.uops.len());
        for (ua, ub) in a.uops.iter().zip(&b.uops) {
            prop_assert_eq!(ua.result, ub.result);
            prop_assert_eq!(ua.mem_addr, ub.mem_addr);
        }
    }

    #[test]
    fn speedups_are_bounded_sane(
        insts in proptest::collection::vec(arb_inst(), 4..20),
    ) {
        // No configuration may be pathologically slower or faster than
        // baseline on random straight-line loop bodies.
        let trace = program_of(&insts, 48);
        let base = simulate_vp(VpMode::Off, false, &trace);
        for vp in [VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
            let s = simulate_vp(vp, true, &trace);
            let ratio = s.cycles as f64 / base.cycles as f64;
            prop_assert!(ratio > 0.2 && ratio < 2.0, "ratio {} under {:?}", ratio, vp);
        }
    }
}
