//! Value-prediction behaviour across crates: accuracy, coverage
//! ordering, flush recovery and livelock prevention via silencing.

use tvp_core::config::{CoreConfig, VpMode};
use tvp_core::pipeline::{simulate, simulate_vp};
use tvp_isa::flags::Cond;
use tvp_isa::inst::build::*;
use tvp_isa::inst::AddrMode;
use tvp_isa::reg::x;
use tvp_workloads::program::Asm;
use tvp_workloads::Machine;

const INSTS: u64 = 40_000;

#[test]
fn fpc_confidence_keeps_accuracy_extreme() {
    // Paper §6.1: accuracy above 99.9% thanks to FPC saturation.
    for name in ["mc_playout", "entropy_coder", "pointer_chase", "string_match"] {
        let w = tvp_workloads::suite::by_name(name).unwrap();
        let trace = w.trace(INSTS);
        for vp in [VpMode::Mvp, VpMode::Tvp, VpMode::Gvp] {
            let s = simulate_vp(vp, false, &trace);
            if s.vp.used > 100 {
                assert!(s.vp.accuracy() > 0.99, "{name}/{vp:?}: accuracy {}", s.vp.accuracy());
            }
        }
    }
}

#[test]
fn coverage_grows_with_prediction_width() {
    // MVP ⊆ TVP ⊆ GVP admissible sets: wider modes should not lose
    // (much) coverage. Allow small dynamic noise.
    for name in ["mc_playout", "entropy_coder"] {
        let w = tvp_workloads::suite::by_name(name).unwrap();
        let trace = w.trace(INSTS);
        let cov = |vp| simulate_vp(vp, false, &trace).vp.coverage();
        let (m, t, g) = (cov(VpMode::Mvp), cov(VpMode::Tvp), cov(VpMode::Gvp));
        assert!(t >= m - 0.02, "{name}: TVP {t} < MVP {m}");
        assert!(g >= t - 0.02, "{name}: GVP {g} < TVP {t}");
    }
}

/// A load whose value flips between two constants every `period`
/// occurrences — engineered to defeat the predictor periodically.
fn flipping_value_trace(period: u64, iters: i64) -> tvp_workloads::Trace {
    let mut a = Asm::new();
    a.i(movz(x(9), iters));
    a.label("loop");
    a.i(and(x(1), x(9), (period as i64 * 2) - 1));
    a.i(cmp(x(1), period as i64));
    a.i(cset(x(2), Cond::Cc));
    a.i(str_sized(x(2), AddrMode::BaseDisp { base: x(20), disp: 0 }, 1));
    a.i(ldr_sized(x(3), AddrMode::BaseDisp { base: x(20), disp: 0 }, 1, false));
    a.i(add(x(4), x(4), x(3)));
    a.i(subs(x(9), x(9), 1i64));
    a.b_cond(Cond::Ne, "loop");
    let mut m = Machine::new(a.assemble().unwrap());
    m.set_reg(x(20), 0x30_0000);
    m.run(200_000)
}

#[test]
fn mispredictions_flush_and_silence_prevents_livelock() {
    let trace = flipping_value_trace(4096, 20_000);
    for silence in [15u64, 250, 1000] {
        let mut cfg = CoreConfig::with_vp(VpMode::Mvp);
        cfg.silence_cycles = silence;
        let s = simulate(cfg, &trace);
        assert_eq!(s.insts_retired, trace.arch_insts, "silence={silence}");
        // The flipping value must cause at least one VP flush once
        // confidence has been established.
        assert!(s.flush.vp_flushes > 0, "silence={silence}: no flushes seen");
    }
}

#[test]
fn longer_silencing_reduces_flushes() {
    let trace = flipping_value_trace(512, 20_000);
    let flushes = |silence: u64| {
        let mut cfg = CoreConfig::with_vp(VpMode::Mvp);
        cfg.silence_cycles = silence;
        simulate(cfg, &trace).flush.vp_flushes
    };
    let short = flushes(15);
    let long = flushes(2_000);
    assert!(long <= short, "more silencing cannot create more flushes: {long} vs {short}");
}

#[test]
fn gvp_strictly_dominates_on_the_outlier() {
    // The pointer_chase crossover the paper highlights: MVP/TVP ≈ 0,
    // GVP large.
    let w = tvp_workloads::suite::by_name("pointer_chase").unwrap();
    let trace = w.trace(60_000);
    let base = simulate_vp(VpMode::Off, false, &trace);
    let mvp = simulate_vp(VpMode::Mvp, false, &trace);
    let tvp = simulate_vp(VpMode::Tvp, false, &trace);
    let gvp = simulate_vp(VpMode::Gvp, false, &trace);
    let pct = |s: &tvp_core::SimStats| (s.speedup_over(&base) - 1.0) * 100.0;
    assert!(pct(&gvp) > 20.0, "GVP = {:.2}%", pct(&gvp));
    assert!(pct(&mvp).abs() < 5.0, "MVP = {:.2}%", pct(&mvp));
    assert!(pct(&tvp).abs() < 5.0, "TVP = {:.2}%", pct(&tvp));
}

#[test]
fn vp_off_has_no_vp_state() {
    let w = tvp_workloads::suite::by_name("string_match").unwrap();
    let trace = w.trace(10_000);
    let s = simulate_vp(VpMode::Off, false, &trace);
    assert_eq!(s.vp.eligible, 0);
    assert_eq!(s.vp.used, 0);
    assert_eq!(s.flush.vp_flushes, 0);
}
